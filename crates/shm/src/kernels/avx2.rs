//! AVX2 backend. Every function here is `unsafe` + `#[target_feature
//! (enable = "avx2")]` and is only reached through a [`super::Kernels`]
//! handle whose backend was set after `is_x86_feature_detected!`
//! confirmed AVX2 — the sole safety requirement of every call.
//!
//! Outputs are byte-identical to `super::scalar` by construction: the
//! searches run the *same* branchless index arithmetic (the trip count
//! of a branchless binary search depends only on the slice length, so
//! four/eight needles advance in lockstep), sorting integers has a
//! unique result, and merging equal scalar keys is unobservable.
//!
//! AVX2 has no unsigned 64/32-bit compare; where needed, operands are
//! XOR-flipped at the sign bit and compared signed (`x ^ 1<<63`
//! preserves unsigned order as signed order).

#![allow(unsafe_op_in_unsafe_fn)]

use std::arch::x86_64::*;

/// Lockstep branchless `(lower_bound, upper_bound)` of four `u64`
/// needles in `sorted` — the same index recurrence as
/// [`super::scalar::bounds_u64`], with the two probe loads per
/// needle-set issued as gathers so the four dependent miss chains
/// overlap.
#[target_feature(enable = "avx2")]
pub unsafe fn bounds4_u64(sorted: &[u64], needles: [u64; 4]) -> ([usize; 4], [usize; 4]) {
    let flip = _mm256_set1_epi64x(i64::MIN);
    let nd = _mm256_loadu_si256(needles.as_ptr().cast());
    let nd_f = _mm256_xor_si256(nd, flip);
    let mut lo = _mm256_setzero_si256();
    let mut hi = _mm256_setzero_si256();
    let base = sorted.as_ptr().cast::<i64>();
    let mut n = sorted.len();
    while n > 1 {
        let half = n / 2;
        let off = _mm256_set1_epi64x((half - 1) as i64);
        // Invariant: lane + n <= sorted.len(), so lane + half - 1 is
        // always in bounds for both gathers.
        let vl = _mm256_i64gather_epi64::<8>(base, _mm256_add_epi64(lo, off));
        let vh = _mm256_i64gather_epi64::<8>(base, _mm256_add_epi64(hi, off));
        let lt = _mm256_cmpgt_epi64(nd_f, _mm256_xor_si256(vl, flip)); // v < needle
        let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(vh, flip), nd_f); // v > needle
        let halfv = _mm256_set1_epi64x(half as i64);
        lo = _mm256_add_epi64(lo, _mm256_and_si256(lt, halfv));
        hi = _mm256_add_epi64(hi, _mm256_andnot_si256(gt, halfv)); // v <= needle
        n -= half;
    }
    if n == 1 {
        let one = _mm256_set1_epi64x(1);
        let vl = _mm256_i64gather_epi64::<8>(base, lo);
        let vh = _mm256_i64gather_epi64::<8>(base, hi);
        let lt = _mm256_cmpgt_epi64(nd_f, _mm256_xor_si256(vl, flip));
        let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(vh, flip), nd_f);
        lo = _mm256_add_epi64(lo, _mm256_and_si256(lt, one));
        hi = _mm256_add_epi64(hi, _mm256_andnot_si256(gt, one));
    }
    let mut lo_out = [0i64; 4];
    let mut hi_out = [0i64; 4];
    _mm256_storeu_si256(lo_out.as_mut_ptr().cast(), lo);
    _mm256_storeu_si256(hi_out.as_mut_ptr().cast(), hi);
    (lo_out.map(|v| v as usize), hi_out.map(|v| v as usize))
}

/// Eight-needle `u32` twin of [`bounds4_u64`]. Indices ride in 32-bit
/// lanes; the dispatch layer never routes slices longer than
/// `i32::MAX` here.
#[target_feature(enable = "avx2")]
pub unsafe fn bounds8_u32(sorted: &[u32], needles: [u32; 8]) -> ([usize; 8], [usize; 8]) {
    debug_assert!(sorted.len() <= i32::MAX as usize);
    let flip = _mm256_set1_epi32(i32::MIN);
    let nd = _mm256_loadu_si256(needles.as_ptr().cast());
    let nd_f = _mm256_xor_si256(nd, flip);
    let mut lo = _mm256_setzero_si256();
    let mut hi = _mm256_setzero_si256();
    let base = sorted.as_ptr().cast::<i32>();
    let mut n = sorted.len();
    while n > 1 {
        let half = n / 2;
        let off = _mm256_set1_epi32((half - 1) as i32);
        let vl = _mm256_i32gather_epi32::<4>(base, _mm256_add_epi32(lo, off));
        let vh = _mm256_i32gather_epi32::<4>(base, _mm256_add_epi32(hi, off));
        let lt = _mm256_cmpgt_epi32(nd_f, _mm256_xor_si256(vl, flip));
        let gt = _mm256_cmpgt_epi32(_mm256_xor_si256(vh, flip), nd_f);
        let halfv = _mm256_set1_epi32(half as i32);
        lo = _mm256_add_epi32(lo, _mm256_and_si256(lt, halfv));
        hi = _mm256_add_epi32(hi, _mm256_andnot_si256(gt, halfv));
        n -= half;
    }
    if n == 1 {
        let one = _mm256_set1_epi32(1);
        let vl = _mm256_i32gather_epi32::<4>(base, lo);
        let vh = _mm256_i32gather_epi32::<4>(base, hi);
        let lt = _mm256_cmpgt_epi32(nd_f, _mm256_xor_si256(vl, flip));
        let gt = _mm256_cmpgt_epi32(_mm256_xor_si256(vh, flip), nd_f);
        lo = _mm256_add_epi32(lo, _mm256_and_si256(lt, one));
        hi = _mm256_add_epi32(hi, _mm256_andnot_si256(gt, one));
    }
    let mut lo_out = [0i32; 8];
    let mut hi_out = [0i32; 8];
    _mm256_storeu_si256(lo_out.as_mut_ptr().cast(), lo);
    _mm256_storeu_si256(hi_out.as_mut_ptr().cast(), hi);
    (lo_out.map(|v| v as usize), hi_out.map(|v| v as usize))
}

/// One tree-descent step for a vector of 4 `u64` node indices:
/// `i = 2i + 1 + (tree[i] <= x)`. `gt` is -1 when `node > x`, so
/// `1 + gt` is exactly the `(node <= x)` indicator.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn descend4_u64(base: *const i64, i: __m256i, x_f: __m256i, flip: __m256i) -> __m256i {
    let one = _mm256_set1_epi64x(1);
    let node = _mm256_i64gather_epi64::<8>(base, i);
    let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(node, flip), x_f); // node > x
    _mm256_add_epi64(
        _mm256_add_epi64(_mm256_add_epi64(i, i), one),
        _mm256_add_epi64(one, gt),
    )
}

/// Bucket-count the leaf indices of one 4-lane descent.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn tally4_u64(i: __m256i, first_leaf: usize, s: usize, counts: &mut [u64]) {
    let mut idx = [0i64; 4];
    _mm256_storeu_si256(idx.as_mut_ptr().cast(), i);
    for v in idx {
        counts[(v as usize - first_leaf).min(s)] += 1;
    }
}

/// Keys descend the flattened search tree in lockstep, **16 at a time**
/// (four independent 4-lane vectors): a single descent is a dependent
/// gather chain — latency-bound, no faster than scalar out-of-order
/// overlap — so four chains run interleaved to keep four gathers in
/// flight per tree level. The tree (at most a few thousand nodes for
/// realistic `P`) stays L1-resident. Same recurrence as
/// [`super::scalar::classify_u64`].
#[target_feature(enable = "avx2")]
pub unsafe fn classify_u64(data: &[u64], tree: &[u64], height: u32, s: usize, counts: &mut [u64]) {
    let flip = _mm256_set1_epi64x(i64::MIN);
    let base = tree.as_ptr().cast::<i64>();
    let first_leaf = tree.len();
    let mut wide = data.chunks_exact(16);
    for chunk in &mut wide {
        let p = chunk.as_ptr();
        let x0 = _mm256_xor_si256(_mm256_loadu_si256(p.cast()), flip);
        let x1 = _mm256_xor_si256(_mm256_loadu_si256(p.add(4).cast()), flip);
        let x2 = _mm256_xor_si256(_mm256_loadu_si256(p.add(8).cast()), flip);
        let x3 = _mm256_xor_si256(_mm256_loadu_si256(p.add(12).cast()), flip);
        let mut i0 = _mm256_setzero_si256();
        let mut i1 = _mm256_setzero_si256();
        let mut i2 = _mm256_setzero_si256();
        let mut i3 = _mm256_setzero_si256();
        for _ in 0..height {
            i0 = descend4_u64(base, i0, x0, flip);
            i1 = descend4_u64(base, i1, x1, flip);
            i2 = descend4_u64(base, i2, x2, flip);
            i3 = descend4_u64(base, i3, x3, flip);
        }
        tally4_u64(i0, first_leaf, s, counts);
        tally4_u64(i1, first_leaf, s, counts);
        tally4_u64(i2, first_leaf, s, counts);
        tally4_u64(i3, first_leaf, s, counts);
    }
    let mut chunks = wide.remainder().chunks_exact(4);
    for chunk in &mut chunks {
        let x_f = _mm256_xor_si256(_mm256_loadu_si256(chunk.as_ptr().cast()), flip);
        let mut i = _mm256_setzero_si256();
        for _ in 0..height {
            i = descend4_u64(base, i, x_f, flip);
        }
        tally4_u64(i, first_leaf, s, counts);
    }
    super::scalar::classify_u64(chunks.remainder(), tree, height, s, counts);
}

/// One tree-descent step for a vector of 8 `u32` node indices.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn descend8_u32(base: *const i32, i: __m256i, x_f: __m256i, flip: __m256i) -> __m256i {
    let one = _mm256_set1_epi32(1);
    let node = _mm256_i32gather_epi32::<4>(base, i);
    let gt = _mm256_cmpgt_epi32(_mm256_xor_si256(node, flip), x_f);
    _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(i, i), one),
        _mm256_add_epi32(one, gt),
    )
}

/// Bucket-count the leaf indices of one 8-lane descent.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn tally8_u32(i: __m256i, first_leaf: usize, s: usize, counts: &mut [u64]) {
    let mut idx = [0i32; 8];
    _mm256_storeu_si256(idx.as_mut_ptr().cast(), i);
    for v in idx {
        counts[(v as usize - first_leaf).min(s)] += 1;
    }
}

/// Eight-lane `u32` twin of [`classify_u64`]: 32 keys per iteration,
/// four interleaved 8-lane descents.
#[target_feature(enable = "avx2")]
pub unsafe fn classify_u32(data: &[u32], tree: &[u32], height: u32, s: usize, counts: &mut [u64]) {
    let flip = _mm256_set1_epi32(i32::MIN);
    let base = tree.as_ptr().cast::<i32>();
    let first_leaf = tree.len();
    let mut wide = data.chunks_exact(32);
    for chunk in &mut wide {
        let p = chunk.as_ptr();
        let x0 = _mm256_xor_si256(_mm256_loadu_si256(p.cast()), flip);
        let x1 = _mm256_xor_si256(_mm256_loadu_si256(p.add(8).cast()), flip);
        let x2 = _mm256_xor_si256(_mm256_loadu_si256(p.add(16).cast()), flip);
        let x3 = _mm256_xor_si256(_mm256_loadu_si256(p.add(24).cast()), flip);
        let mut i0 = _mm256_setzero_si256();
        let mut i1 = _mm256_setzero_si256();
        let mut i2 = _mm256_setzero_si256();
        let mut i3 = _mm256_setzero_si256();
        for _ in 0..height {
            i0 = descend8_u32(base, i0, x0, flip);
            i1 = descend8_u32(base, i1, x1, flip);
            i2 = descend8_u32(base, i2, x2, flip);
            i3 = descend8_u32(base, i3, x3, flip);
        }
        tally8_u32(i0, first_leaf, s, counts);
        tally8_u32(i1, first_leaf, s, counts);
        tally8_u32(i2, first_leaf, s, counts);
        tally8_u32(i3, first_leaf, s, counts);
    }
    let mut chunks = wide.remainder().chunks_exact(8);
    for chunk in &mut chunks {
        let x_f = _mm256_xor_si256(_mm256_loadu_si256(chunk.as_ptr().cast()), flip);
        let mut i = _mm256_setzero_si256();
        for _ in 0..height {
            i = descend8_u32(base, i, x_f, flip);
        }
        tally8_u32(i, first_leaf, s, counts);
    }
    super::scalar::classify_u32(chunks.remainder(), tree, height, s, counts);
}

/// Vectorized occupancy fold: `(OR, AND)` over all keys, 4 lanes at a
/// time plus a scalar tail.
#[target_feature(enable = "avx2")]
unsafe fn occupancy_u64(data: &[u64]) -> (u64, u64) {
    let mut orv = _mm256_setzero_si256();
    let mut andv = _mm256_set1_epi64x(-1);
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let v = _mm256_loadu_si256(chunk.as_ptr().cast());
        orv = _mm256_or_si256(orv, v);
        andv = _mm256_and_si256(andv, v);
    }
    let mut or_l = [0u64; 4];
    let mut and_l = [0u64; 4];
    _mm256_storeu_si256(or_l.as_mut_ptr().cast(), orv);
    _mm256_storeu_si256(and_l.as_mut_ptr().cast(), andv);
    let mut or = or_l.iter().fold(0, |a, &b| a | b);
    let mut and = and_l.iter().fold(u64::MAX, |a, &b| a & b);
    for &x in chunks.remainder() {
        or |= x;
        and &= x;
    }
    (or, and)
}

/// `u32` twin of [`occupancy_u64`] (8 lanes).
#[target_feature(enable = "avx2")]
unsafe fn occupancy_u32(data: &[u32]) -> (u32, u32) {
    let mut orv = _mm256_setzero_si256();
    let mut andv = _mm256_set1_epi32(-1);
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let v = _mm256_loadu_si256(chunk.as_ptr().cast());
        orv = _mm256_or_si256(orv, v);
        andv = _mm256_and_si256(andv, v);
    }
    let mut or_l = [0u32; 8];
    let mut and_l = [0u32; 8];
    _mm256_storeu_si256(or_l.as_mut_ptr().cast(), orv);
    _mm256_storeu_si256(and_l.as_mut_ptr().cast(), andv);
    let mut or = or_l.iter().fold(0, |a, &b| a | b);
    let mut and = and_l.iter().fold(u32::MAX, |a, &b| a & b);
    for &x in chunks.remainder() {
        or |= x;
        and &= x;
    }
    (or, and)
}

/// LSD radix sort with the vectorized occupancy pre-pass and 4-way
/// split counting tables (independent tables break the
/// increment-after-increment store-forwarding chain on duplicate-heavy
/// digit streams; their sums equal the scalar histogram exactly).
#[target_feature(enable = "avx2")]
pub unsafe fn radix_sort_u64(data: &mut [u64]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let (or, and) = occupancy_u64(data);
    let varying = or ^ and;
    let live: Vec<usize> = (0..8)
        .filter(|&p| (varying >> (8 * p)) & 0xFF != 0)
        .collect();
    if live.is_empty() {
        return;
    }
    let mut hist = vec![[[0u32; 256]; 4]; live.len()];
    {
        let mut chunks = data.chunks_exact(4);
        for chunk in &mut chunks {
            for (h, &p) in hist.iter_mut().zip(&live) {
                let sh = 8 * p as u32;
                h[0][((chunk[0] >> sh) & 0xFF) as usize] += 1;
                h[1][((chunk[1] >> sh) & 0xFF) as usize] += 1;
                h[2][((chunk[2] >> sh) & 0xFF) as usize] += 1;
                h[3][((chunk[3] >> sh) & 0xFF) as usize] += 1;
            }
        }
        for &x in chunks.remainder() {
            for (h, &p) in hist.iter_mut().zip(&live) {
                h[0][((x >> (8 * p)) & 0xFF) as usize] += 1;
            }
        }
    }
    let mut src: Vec<u64> = data.to_vec();
    let mut dst: Vec<u64> = vec![0; n];
    for (h, &p) in hist.iter().zip(&live) {
        let shift = 8 * p as u32;
        let mut offsets = [0usize; 256];
        let mut acc = 0usize;
        for (d, o) in offsets.iter_mut().enumerate() {
            *o = acc;
            acc += (h[0][d] + h[1][d] + h[2][d] + h[3][d]) as usize;
        }
        for &x in src.iter() {
            let d = ((x >> shift) & 0xFF) as usize;
            // SAFETY: offsets[d] enumerates 0..n exactly once per pass.
            *dst.get_unchecked_mut(offsets[d]) = x;
            offsets[d] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    data.copy_from_slice(&src);
}

/// `u32` twin of [`radix_sort_u64`].
#[target_feature(enable = "avx2")]
pub unsafe fn radix_sort_u32(data: &mut [u32]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let (or, and) = occupancy_u32(data);
    let varying = or ^ and;
    let live: Vec<usize> = (0..4)
        .filter(|&p| (varying >> (8 * p)) & 0xFF != 0)
        .collect();
    if live.is_empty() {
        return;
    }
    let mut hist = vec![[[0u32; 256]; 4]; live.len()];
    {
        let mut chunks = data.chunks_exact(4);
        for chunk in &mut chunks {
            for (h, &p) in hist.iter_mut().zip(&live) {
                let sh = 8 * p as u32;
                h[0][((chunk[0] >> sh) & 0xFF) as usize] += 1;
                h[1][((chunk[1] >> sh) & 0xFF) as usize] += 1;
                h[2][((chunk[2] >> sh) & 0xFF) as usize] += 1;
                h[3][((chunk[3] >> sh) & 0xFF) as usize] += 1;
            }
        }
        for &x in chunks.remainder() {
            for (h, &p) in hist.iter_mut().zip(&live) {
                h[0][((x >> (8 * p)) & 0xFF) as usize] += 1;
            }
        }
    }
    let mut src: Vec<u32> = data.to_vec();
    let mut dst: Vec<u32> = vec![0; n];
    for (h, &p) in hist.iter().zip(&live) {
        let shift = 8 * p as u32;
        let mut offsets = [0usize; 256];
        let mut acc = 0usize;
        for (d, o) in offsets.iter_mut().enumerate() {
            *o = acc;
            acc += (h[0][d] + h[1][d] + h[2][d] + h[3][d]) as usize;
        }
        for &x in src.iter() {
            let d = ((x >> shift) & 0xFF) as usize;
            // SAFETY: offsets[d] enumerates 0..n exactly once per pass.
            *dst.get_unchecked_mut(offsets[d]) = x;
            offsets[d] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    data.copy_from_slice(&src);
}

/// Elementwise unsigned min/max of 4×u64 via sign-flip + signed
/// compare + blend.
#[target_feature(enable = "avx2")]
unsafe fn minmax_epu64(a: __m256i, b: __m256i, flip: __m256i) -> (__m256i, __m256i) {
    let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a, flip), _mm256_xor_si256(b, flip));
    (
        _mm256_blendv_epi8(a, b, gt), // min: where a > b, take b
        _mm256_blendv_epi8(b, a, gt), // max: where a > b, take a
    )
}

/// Sort a 4×u64 *bitonic* register ascending: compare-exchange at
/// distance 2, then distance 1.
#[target_feature(enable = "avx2")]
unsafe fn bitonic_sort4_u64(v: __m256i, flip: __m256i) -> __m256i {
    let t = _mm256_permute4x64_epi64::<0x4E>(v); // [2,3,0,1]
    let (mn, mx) = minmax_epu64(v, t, flip);
    let v = _mm256_blend_epi32::<0b1111_0000>(mn, mx);
    let t = _mm256_permute4x64_epi64::<0xB1>(v); // [1,0,3,2]
    let (mn, mx) = minmax_epu64(v, t, flip);
    _mm256_blend_epi32::<0b1100_1100>(mn, mx)
}

/// Bitonic in-register merge of two ascending 4×u64 registers:
/// returns (lowest four ascending, highest four ascending).
#[target_feature(enable = "avx2")]
unsafe fn bitonic_merge4_u64(a: __m256i, b: __m256i, flip: __m256i) -> (__m256i, __m256i) {
    let b_rev = _mm256_permute4x64_epi64::<0x1B>(b); // [3,2,1,0]
    let (lo, hi) = minmax_epu64(a, b_rev, flip);
    (bitonic_sort4_u64(lo, flip), bitonic_sort4_u64(hi, flip))
}

/// Two-way merge with a 4×u64 bitonic network core: register-sized
/// blocks stream through the in-register merge, refilling from the
/// run whose next head is smaller (the classic SIMD mergesort kernel);
/// the tails drain through a scalar three-way merge. Output is the
/// sorted multiset of the inputs — byte-identical to the scalar merge.
#[target_feature(enable = "avx2")]
pub unsafe fn merge_u64(a: &[u64], b: &[u64], out: &mut [u64]) {
    const W: usize = 4;
    if a.len() < W || b.len() < W {
        return super::scalar::merge_u64(a, b, out);
    }
    let flip = _mm256_set1_epi64x(i64::MIN);
    let mut va = _mm256_loadu_si256(a.as_ptr().cast());
    let mut vb = _mm256_loadu_si256(b.as_ptr().cast());
    let (mut i, mut j, mut k) = (W, W, 0usize);
    loop {
        let (lo, hi) = bitonic_merge4_u64(va, vb, flip);
        _mm256_storeu_si256(out.as_mut_ptr().add(k).cast(), lo);
        k += W;
        va = hi;
        // Refill from the run with the smaller next head; stop when
        // that run cannot supply a full register.
        let take_a = match (i < a.len(), j < b.len()) {
            (true, true) => a[i] <= b[j],
            (have_a, _) => have_a,
        };
        if take_a {
            if i + W > a.len() {
                break;
            }
            vb = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            i += W;
        } else {
            if j + W > b.len() {
                break;
            }
            vb = _mm256_loadu_si256(b.as_ptr().add(j).cast());
            j += W;
        }
    }
    // Drain: the retained register holds four sorted keys no larger
    // than anything unread; three-way scalar merge of (tail, a, b).
    let mut tail = [0u64; W];
    _mm256_storeu_si256(tail.as_mut_ptr().cast(), va);
    let mut t = 0usize;
    while k < out.len() {
        let from_t =
            t < W && (i >= a.len() || tail[t] <= a[i]) && (j >= b.len() || tail[t] <= b[j]);
        let from_a = !from_t && i < a.len() && (j >= b.len() || a[i] <= b[j]);
        out[k] = if from_t {
            let v = tail[t];
            t += 1;
            v
        } else if from_a {
            let v = a[i];
            i += 1;
            v
        } else {
            let v = b[j];
            j += 1;
            v
        };
        k += 1;
    }
}

/// Sort an 8×u32 *bitonic* register ascending: compare-exchange at
/// distance 4, 2, then 1 (native unsigned min/max exists for u32).
#[target_feature(enable = "avx2")]
unsafe fn bitonic_sort8_u32(v: __m256i) -> __m256i {
    let t = _mm256_permute2x128_si256::<0x01>(v, v); // swap 128-bit halves
    let v = _mm256_blend_epi32::<0b1111_0000>(_mm256_min_epu32(v, t), _mm256_max_epu32(v, t));
    let t = _mm256_shuffle_epi32::<0x4E>(v); // [2,3,0,1] per 128-bit lane
    let v = _mm256_blend_epi32::<0b1100_1100>(_mm256_min_epu32(v, t), _mm256_max_epu32(v, t));
    let t = _mm256_shuffle_epi32::<0xB1>(v); // [1,0,3,2] per 128-bit lane
    _mm256_blend_epi32::<0b1010_1010>(_mm256_min_epu32(v, t), _mm256_max_epu32(v, t))
}

/// Bitonic in-register merge of two ascending 8×u32 registers.
#[target_feature(enable = "avx2")]
unsafe fn bitonic_merge8_u32(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
    let rev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
    let b_rev = _mm256_permutevar8x32_epi32(b, rev);
    let lo = _mm256_min_epu32(a, b_rev);
    let hi = _mm256_max_epu32(a, b_rev);
    (bitonic_sort8_u32(lo), bitonic_sort8_u32(hi))
}

/// `u32` twin of [`merge_u64`] (8-wide network).
#[target_feature(enable = "avx2")]
pub unsafe fn merge_u32(a: &[u32], b: &[u32], out: &mut [u32]) {
    const W: usize = 8;
    if a.len() < W || b.len() < W {
        return super::scalar::merge_u32(a, b, out);
    }
    let mut va = _mm256_loadu_si256(a.as_ptr().cast());
    let mut vb = _mm256_loadu_si256(b.as_ptr().cast());
    let (mut i, mut j, mut k) = (W, W, 0usize);
    loop {
        let (lo, hi) = bitonic_merge8_u32(va, vb);
        _mm256_storeu_si256(out.as_mut_ptr().add(k).cast(), lo);
        k += W;
        va = hi;
        let take_a = match (i < a.len(), j < b.len()) {
            (true, true) => a[i] <= b[j],
            (have_a, _) => have_a,
        };
        if take_a {
            if i + W > a.len() {
                break;
            }
            vb = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            i += W;
        } else {
            if j + W > b.len() {
                break;
            }
            vb = _mm256_loadu_si256(b.as_ptr().add(j).cast());
            j += W;
        }
    }
    let mut tail = [0u32; W];
    _mm256_storeu_si256(tail.as_mut_ptr().cast(), va);
    let mut t = 0usize;
    while k < out.len() {
        let from_t =
            t < W && (i >= a.len() || tail[t] <= a[i]) && (j >= b.len() || tail[t] <= b[j]);
        let from_a = !from_t && i < a.len() && (j >= b.len() || a[i] <= b[j]);
        out[k] = if from_t {
            let v = tail[t];
            t += 1;
            v
        } else if from_a {
            let v = a[i];
            i += 1;
            v
        } else {
            let v = b[j];
            j += 1;
            v
        };
        k += 1;
    }
}
