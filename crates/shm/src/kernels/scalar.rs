//! Portable scalar reference kernels — the determinism baseline every
//! SIMD backend must match byte for byte.
//!
//! The implementations here are deliberately branch-poor (branchless
//! binary search, conditional-move merge loop) so the scalar "A" side
//! of the `kernel_ab` wall-clock group is an honest baseline, but they
//! use no `std::arch` and compile on every target.

/// Branchless `(lower_bound, upper_bound)` of `needle` in `sorted`:
/// exactly `partition_point(|x| *x < needle)` and
/// `partition_point(|x| *x <= needle)`. The loop trip count depends
/// only on `sorted.len()`, which is what lets the AVX2 backend run
/// several needles in lockstep over the identical index arithmetic.
pub fn bounds_u64(sorted: &[u64], needle: u64) -> (usize, usize) {
    let (mut lo, mut hi) = (0usize, 0usize);
    let mut n = sorted.len();
    while n > 1 {
        let half = n / 2;
        // SAFETY: lo + n <= len and hi + n <= len are loop invariants,
        // so lo + half - 1 and hi + half - 1 are in bounds.
        let vl = unsafe { *sorted.get_unchecked(lo + half - 1) };
        let vh = unsafe { *sorted.get_unchecked(hi + half - 1) };
        lo += usize::from(vl < needle) * half;
        hi += usize::from(vh <= needle) * half;
        n -= half;
    }
    if n == 1 {
        lo += usize::from(sorted[lo] < needle);
        hi += usize::from(sorted[hi] <= needle);
    }
    (lo, hi)
}

/// `u32` twin of [`bounds_u64`].
pub fn bounds_u32(sorted: &[u32], needle: u32) -> (usize, usize) {
    let (mut lo, mut hi) = (0usize, 0usize);
    let mut n = sorted.len();
    while n > 1 {
        let half = n / 2;
        // SAFETY: lo + n <= len and hi + n <= len are loop invariants.
        let vl = unsafe { *sorted.get_unchecked(lo + half - 1) };
        let vh = unsafe { *sorted.get_unchecked(hi + half - 1) };
        lo += usize::from(vl < needle) * half;
        hi += usize::from(vh <= needle) * half;
        n -= half;
    }
    if n == 1 {
        lo += usize::from(sorted[lo] < needle);
        hi += usize::from(sorted[hi] <= needle);
    }
    (lo, hi)
}

/// One-pass classification against a flattened implicit search tree
/// (see `build_eytzinger_u64`): each key descends `height` levels with
/// the branchless rule `i -> 2i + 1 + (tree[i] <= key)`, landing on
/// its `upper_bound` rank in the padded ladder; ranks past the real
/// ladder are sentinel hits and clamp to `s`.
pub fn classify_u64(data: &[u64], tree: &[u64], height: u32, s: usize, counts: &mut [u64]) {
    let first_leaf = tree.len(); // == 2^height - 1
    for &x in data {
        let mut i = 0usize;
        for _ in 0..height {
            // SAFETY: i < tree.len() at every level of a complete tree.
            let node = unsafe { *tree.get_unchecked(i) };
            i = 2 * i + 1 + usize::from(node <= x);
        }
        let bucket = (i - first_leaf).min(s);
        counts[bucket] += 1;
    }
}

/// `u32` twin of [`classify_u64`].
pub fn classify_u32(data: &[u32], tree: &[u32], height: u32, s: usize, counts: &mut [u64]) {
    let first_leaf = tree.len();
    for &x in data {
        let mut i = 0usize;
        for _ in 0..height {
            // SAFETY: i < tree.len() at every level of a complete tree.
            let node = unsafe { *tree.get_unchecked(i) };
            i = 2 * i + 1 + usize::from(node <= x);
        }
        let bucket = (i - first_leaf).min(s);
        counts[bucket] += 1;
    }
}

/// Occupancy fold: `(OR, AND)` over all keys. A byte position is
/// constant across the input iff the two folds agree there.
fn occupancy_u64(data: &[u64]) -> (u64, u64) {
    let mut or = 0u64;
    let mut and = u64::MAX;
    for &x in data {
        or |= x;
        and &= x;
    }
    (or, and)
}

/// Monomorphic LSD radix sort for `u64`: occupancy pre-pass to find
/// the varying byte positions, one fused counting sweep for all live
/// passes (the per-pass tables total at most 16 KiB — cache-sized),
/// then a stable ping-pong scatter per live pass. Output equals
/// `sort_unstable`.
pub fn radix_sort_u64(data: &mut [u64]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let (or, and) = occupancy_u64(data);
    let varying = or ^ and;
    let live: Vec<usize> = (0..8)
        .filter(|&p| (varying >> (8 * p)) & 0xFF != 0)
        .collect();
    if live.is_empty() {
        return;
    }
    // Fused counting: one read sweep fills every live pass's table.
    let mut hist = vec![[0u32; 256]; live.len()];
    for &x in data.iter() {
        for (h, &p) in hist.iter_mut().zip(&live) {
            h[((x >> (8 * p)) & 0xFF) as usize] += 1;
        }
    }
    let mut src: Vec<u64> = data.to_vec();
    let mut dst: Vec<u64> = vec![0; n];
    for (h, &p) in hist.iter().zip(&live) {
        let shift = 8 * p as u32;
        let mut offsets = [0usize; 256];
        let mut acc = 0usize;
        for (o, &c) in offsets.iter_mut().zip(h.iter()) {
            *o = acc;
            acc += c as usize;
        }
        for &x in src.iter() {
            let d = ((x >> shift) & 0xFF) as usize;
            // SAFETY: offsets[d] enumerates 0..n exactly once per pass.
            unsafe { *dst.get_unchecked_mut(offsets[d]) = x };
            offsets[d] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    data.copy_from_slice(&src);
}

/// `u32` twin of [`radix_sort_u64`].
pub fn radix_sort_u32(data: &mut [u32]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let mut or = 0u32;
    let mut and = u32::MAX;
    for &x in data.iter() {
        or |= x;
        and &= x;
    }
    let varying = or ^ and;
    let live: Vec<usize> = (0..4)
        .filter(|&p| (varying >> (8 * p)) & 0xFF != 0)
        .collect();
    if live.is_empty() {
        return;
    }
    let mut hist = vec![[0u32; 256]; live.len()];
    for &x in data.iter() {
        for (h, &p) in hist.iter_mut().zip(&live) {
            h[((x >> (8 * p)) & 0xFF) as usize] += 1;
        }
    }
    let mut src: Vec<u32> = data.to_vec();
    let mut dst: Vec<u32> = vec![0; n];
    for (h, &p) in hist.iter().zip(&live) {
        let shift = 8 * p as u32;
        let mut offsets = [0usize; 256];
        let mut acc = 0usize;
        for (o, &c) in offsets.iter_mut().zip(h.iter()) {
            *o = acc;
            acc += c as usize;
        }
        for &x in src.iter() {
            let d = ((x >> shift) & 0xFF) as usize;
            // SAFETY: offsets[d] enumerates 0..n exactly once per pass.
            unsafe { *dst.get_unchecked_mut(offsets[d]) = x };
            offsets[d] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    data.copy_from_slice(&src);
}

/// Conditional-move two-way merge: the take-from-a/take-from-b choice
/// compiles to a cmov, so randomly interleaved runs do not mispredict
/// per element.
pub fn merge_u64(a: &[u64], b: &[u64], out: &mut [u64]) {
    let (na, nb) = (a.len(), b.len());
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < na && j < nb {
        let take_b = b[j] < a[i];
        out[k] = if take_b { b[j] } else { a[i] };
        i += usize::from(!take_b);
        j += usize::from(take_b);
        k += 1;
    }
    out[k..k + (na - i)].copy_from_slice(&a[i..]);
    out[k + (na - i)..].copy_from_slice(&b[j..]);
}

/// `u32` twin of [`merge_u64`].
pub fn merge_u32(a: &[u32], b: &[u32], out: &mut [u32]) {
    let (na, nb) = (a.len(), b.len());
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < na && j < nb {
        let take_b = b[j] < a[i];
        out[k] = if take_b { b[j] } else { a[i] };
        i += usize::from(!take_b);
        j += usize::from(take_b);
        k += 1;
    }
    out[k..k + (na - i)].copy_from_slice(&a[i..]);
    out[k + (na - i)..].copy_from_slice(&b[j..]);
}
