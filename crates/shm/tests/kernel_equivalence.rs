//! SIMD == scalar equivalence for every kernel in `dhs_shm::kernels`.
//!
//! The scalar backend is the determinism reference; on an AVX2 host
//! `Kernels::auto()` dispatches the vectorized backend and these tests
//! pin byte-identical outputs across key widths (`u32`/`u64`),
//! duplicate-heavy and adversarial ladders, empty/singleton/odd-length
//! slices, and unaligned slice heads. On a non-AVX2 host `auto()`
//! resolves to scalar and the comparisons hold trivially — the
//! partition-point and `sort_unstable` oracles still check the scalar
//! kernels themselves.

use dhs_shm::kernels::{ladder_bounds_typed, merge_typed, radix_sort_typed, Kernels};
use proptest::prelude::*;

/// xorshift64* stream; deterministic per seed.
fn stream(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Keys in one of four shapes: uniform, duplicate-heavy, narrow-range
/// (adversarial for radix occupancy), or near-sorted.
fn keys_u64(seed: u64, len: usize, shape: usize) -> Vec<u64> {
    let mut next = stream(seed);
    match shape % 4 {
        0 => (0..len).map(|_| next()).collect(),
        1 => (0..len).map(|_| next() % 7).collect(),
        2 => (0..len)
            .map(|_| 0xAA00_0000_0000_0000 | (next() & 0xFF))
            .collect(),
        _ => {
            let mut v: Vec<u64> = (0..len).map(|_| next()).collect();
            v.sort_unstable();
            if len > 2 {
                let i = (next() % len as u64) as usize;
                let j = (next() % len as u64) as usize;
                v.swap(i, j);
            }
            v
        }
    }
}

fn keys_u32(seed: u64, len: usize, shape: usize) -> Vec<u32> {
    keys_u64(seed, len, shape)
        .into_iter()
        .map(|x| x as u32)
        .collect()
}

/// An ascending ladder, optionally duplicate-heavy, with sentinels at
/// both extremes mixed in.
fn ladder_u64(seed: u64, len: usize, dupes: bool) -> Vec<u64> {
    let mut next = stream(seed ^ 0xDEAD_BEEF);
    let mut v: Vec<u64> = (0..len)
        .map(|_| if dupes { next() % 5 } else { next() })
        .collect();
    if len >= 2 {
        v[0] = 0;
        v[1] = u64::MAX;
    }
    v.sort_unstable();
    v
}

fn ladder_u32(seed: u64, len: usize, dupes: bool) -> Vec<u32> {
    let mut v: Vec<u32> = ladder_u64(seed, len, dupes)
        .into_iter()
        .map(|x| x as u32)
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn ladder_bounds_u64_matches_partition_point(
        seed in 0u64..u64::MAX,
        len in 0usize..200,
        n_needles in 0usize..40,
        shape in 0usize..4,
        dupes: bool,
        offset in 0usize..2,
    ) {
        let mut sorted = keys_u64(seed, len + offset, shape);
        sorted.sort_unstable();
        let sorted = &sorted[offset.min(sorted.len())..]; // unaligned head
        let needles = ladder_u64(seed ^ 1, n_needles, dupes);
        for k in [Kernels::scalar(), Kernels::auto()] {
            let mut out = Vec::new();
            k.ladder_bounds_u64(sorted, &needles, 10, &mut out);
            prop_assert_eq!(out.len(), 2 * needles.len());
            for (i, &n) in needles.iter().enumerate() {
                let l = sorted.partition_point(|x| *x < n) as u64 + 10;
                let u = sorted.partition_point(|x| *x <= n) as u64 + 10;
                prop_assert_eq!((out[2 * i], out[2 * i + 1]), (l, u), "backend {}", k.backend_name());
            }
        }
    }

    #[test]
    fn ladder_bounds_u32_matches_partition_point(
        seed in 0u64..u64::MAX,
        len in 0usize..200,
        n_needles in 0usize..40,
        shape in 0usize..4,
        dupes: bool,
        offset in 0usize..2,
    ) {
        let mut sorted = keys_u32(seed, len + offset, shape);
        sorted.sort_unstable();
        let sorted = &sorted[offset.min(sorted.len())..];
        let needles = ladder_u32(seed ^ 1, n_needles, dupes);
        for k in [Kernels::scalar(), Kernels::auto()] {
            let mut out = Vec::new();
            k.ladder_bounds_u32(sorted, &needles, 0, &mut out);
            for (i, &n) in needles.iter().enumerate() {
                let l = sorted.partition_point(|x| *x < n) as u64;
                let u = sorted.partition_point(|x| *x <= n) as u64;
                prop_assert_eq!((out[2 * i], out[2 * i + 1]), (l, u), "backend {}", k.backend_name());
            }
        }
    }

    #[test]
    fn classify_counts_matches_upper_bound_ranks(
        seed in 0u64..u64::MAX,
        len in 0usize..300,
        s in 0usize..20,
        shape in 0usize..4,
        dupes: bool,
    ) {
        let data = keys_u64(seed, len, shape);
        let ladder = ladder_u64(seed ^ 2, s, dupes);
        let mut expect = vec![0u64; ladder.len() + 1];
        for &x in &data {
            expect[ladder.partition_point(|l| *l <= x)] += 1;
        }
        for k in [Kernels::scalar(), Kernels::auto()] {
            let mut counts = vec![u64::MAX; ladder.len() + 1];
            k.classify_counts_u64(&data, &ladder, &mut counts);
            prop_assert_eq!(&counts, &expect, "backend {}", k.backend_name());
        }
        // u32 twin on the same shape.
        let data = keys_u32(seed, len, shape);
        let ladder = ladder_u32(seed ^ 2, s, dupes);
        let mut expect = vec![0u64; ladder.len() + 1];
        for &x in &data {
            expect[ladder.partition_point(|l| *l <= x)] += 1;
        }
        for k in [Kernels::scalar(), Kernels::auto()] {
            let mut counts = vec![u64::MAX; ladder.len() + 1];
            k.classify_counts_u32(&data, &ladder, &mut counts);
            prop_assert_eq!(&counts, &expect, "backend {}", k.backend_name());
        }
    }

    #[test]
    fn radix_sort_matches_sort_unstable(
        seed in 0u64..u64::MAX,
        len in 0usize..400,
        shape in 0usize..4,
    ) {
        let data = keys_u64(seed, len, shape);
        let mut expect = data.clone();
        expect.sort_unstable();
        for k in [Kernels::scalar(), Kernels::auto()] {
            let mut got = data.clone();
            k.radix_sort_u64(&mut got);
            prop_assert_eq!(&got, &expect, "backend {}", k.backend_name());
        }
        let data = keys_u32(seed, len, shape);
        let mut expect = data.clone();
        expect.sort_unstable();
        for k in [Kernels::scalar(), Kernels::auto()] {
            let mut got = data.clone();
            k.radix_sort_u32(&mut got);
            prop_assert_eq!(&got, &expect, "backend {}", k.backend_name());
        }
    }

    #[test]
    fn merge_matches_std_merge(
        seed in 0u64..u64::MAX,
        na in 0usize..150,
        nb in 0usize..150,
        shape in 0usize..4,
        offset in 0usize..2,
    ) {
        let mut a = keys_u64(seed, na + offset, shape);
        let mut b = keys_u64(seed ^ 3, nb, shape);
        a.sort_unstable();
        b.sort_unstable();
        let a = &a[offset.min(a.len())..]; // unaligned head
        let mut expect: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        for k in [Kernels::scalar(), Kernels::auto()] {
            let mut out = vec![0u64; a.len() + b.len()];
            k.merge_u64(a, &b, &mut out);
            prop_assert_eq!(&out, &expect, "backend {}", k.backend_name());
        }
        let a32: Vec<u32> = a.iter().map(|&x| x as u32).collect();
        let mut a32 = a32;
        a32.sort_unstable();
        let mut b32: Vec<u32> = b.iter().map(|&x| x as u32).collect();
        b32.sort_unstable();
        let mut expect: Vec<u32> = a32.iter().chain(b32.iter()).copied().collect();
        expect.sort_unstable();
        for k in [Kernels::scalar(), Kernels::auto()] {
            let mut out = vec![0u32; a32.len() + b32.len()];
            k.merge_u32(&a32, &b32, &mut out);
            prop_assert_eq!(&out, &expect, "backend {}", k.backend_name());
        }
    }

    #[test]
    fn typed_bridges_route_u64_and_u32(
        seed in 0u64..u64::MAX,
        len in 1usize..100,
        s in 1usize..10,
    ) {
        let k = Kernels::auto();
        // ladder_bounds_typed over u64 bits.
        let mut sorted = keys_u64(seed, len, 0);
        sorted.sort_unstable();
        let needles = ladder_u64(seed ^ 4, s, false);
        let mut out = Vec::new();
        prop_assert!(ladder_bounds_typed(k, &sorted, needles.len(), |i| needles[i], 0, &mut out));
        for (i, &n) in needles.iter().enumerate() {
            prop_assert_eq!(out[2 * i], sorted.partition_point(|x| *x < n) as u64);
        }
        // merge_typed + radix_sort_typed over u32.
        let mut data = keys_u32(seed, len, 1);
        prop_assert!(radix_sort_typed(k, &mut data));
        prop_assert!(data.windows(2).all(|w| w[0] <= w[1]));
        let half = len / 2;
        let (a, b) = data.split_at(half);
        let mut merged = vec![0u32; len];
        prop_assert!(merge_typed(k, a, b, &mut merged));
        prop_assert!(merged.windows(2).all(|w| w[0] <= w[1]));
        // Non-integer element types refuse and leave data untouched.
        let mut floats = [1.5f64, 0.5];
        prop_assert!(!radix_sort_typed(k, &mut floats));
        prop_assert_eq!(floats, [1.5, 0.5]);
    }
}

/// Deterministic edge cases the proptests may not pin every run.
#[test]
fn edge_cases_all_backends() {
    for k in [Kernels::scalar(), Kernels::auto()] {
        // Empty everything.
        let mut out = Vec::new();
        k.ladder_bounds_u64(&[], &[5], 0, &mut out);
        assert_eq!(out, vec![0, 0]);
        out.clear();
        k.ladder_bounds_u64(&[1, 2, 3], &[], 0, &mut out);
        assert!(out.is_empty());

        let mut counts = vec![0u64; 1];
        k.classify_counts_u64(&[9, 9, 9], &[], &mut counts);
        assert_eq!(counts, vec![3]);

        let mut counts = vec![0u64; 3];
        k.classify_counts_u64(&[], &[1, 2], &mut counts);
        assert_eq!(counts, vec![0, 0, 0]);

        // All-equal keys against an all-equal ladder: everything lands
        // past the last duplicate splitter.
        let mut counts = vec![0u64; 4];
        k.classify_counts_u64(&[7; 10], &[7, 7, 7], &mut counts);
        assert_eq!(counts, vec![0, 0, 0, 10]);

        // u64::MAX keys exercise the sentinel clamp.
        let mut counts = vec![0u64; 3];
        k.classify_counts_u64(&[u64::MAX, 0], &[1, u64::MAX], &mut counts);
        assert_eq!(counts, vec![1, 0, 1]);

        let mut v: Vec<u64> = vec![];
        k.radix_sort_u64(&mut v);
        let mut v = vec![42u64];
        k.radix_sort_u64(&mut v);
        assert_eq!(v, vec![42]);

        let mut out = vec![0u64; 1];
        k.merge_u64(&[3], &[], &mut out);
        assert_eq!(out, vec![3]);
        let mut out = vec![0u32; 3];
        k.merge_u32(&[2, 2], &[2], &mut out);
        assert_eq!(out, vec![2, 2, 2]);
    }
}

/// On this CI matrix x86_64 hosts must actually exercise the AVX2
/// backend (otherwise the equivalence suite silently tests scalar
/// against itself).
#[test]
fn auto_backend_is_accelerated_on_avx2_hosts() {
    #[cfg(target_arch = "x86_64")]
    if std::env::var_os("DHS_EXPECT_AVX2").is_some() {
        assert!(Kernels::auto().is_accelerated());
        assert_eq!(Kernels::auto().backend_name(), "avx2");
    }
    assert_eq!(Kernels::scalar().backend_name(), "scalar");
}
