//! # dhs — Distributed Histogram Sort
//!
//! Umbrella crate re-exporting the full reproduction of *"Engineering a
//! Distributed Histogram Sort"* (Kowalewski, Jungblut, Fürlinger — IEEE
//! CLUSTER 2019). See `README.md` for a tour and `DESIGN.md` for the
//! paper-to-module map.

pub use dhs_baselines as baselines;
pub use dhs_core as core;
pub use dhs_merge as merge;
pub use dhs_pgas as pgas;
pub use dhs_runtime as runtime;
pub use dhs_select as select;
pub use dhs_shm as shm;
pub use dhs_workloads as workloads;
