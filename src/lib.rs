//! # dhs — Distributed Histogram Sort
//!
//! Umbrella crate re-exporting the full reproduction of *"Engineering a
//! Distributed Histogram Sort"* (Kowalewski, Jungblut, Fürlinger — IEEE
//! CLUSTER 2019). See `README.md` for a tour and `DESIGN.md` for the
//! paper-to-module map.

pub use dhs_baselines as baselines;
pub use dhs_core as core;
pub use dhs_merge as merge;
pub use dhs_pgas as pgas;
pub use dhs_runtime as runtime;
pub use dhs_select as select;
pub use dhs_shm as shm;
pub use dhs_workloads as workloads;

/// Everything a typical driver needs, in one import:
///
/// ```
/// use dhs::prelude::*;
///
/// let out = run(&ClusterConfig::small_cluster(4), |comm| {
///     let mut local: Vec<u64> = (0..64).map(|i| i * 37 % 101 + comm.rank() as u64).collect();
///     histogram_sort(comm, &mut local, &SortConfig::default());
///     local
/// });
/// let all: Vec<u64> = out.into_iter().flat_map(|(v, _)| v).collect();
/// assert!(all.windows(2).all(|w| w[0] <= w[1]));
/// ```
pub mod prelude {
    pub use dhs_core::{
        histogram_sort, histogram_sort_by, histogram_sort_by_warm, histogram_sort_two_level,
        histogram_sort_warm, is_sorted, median, nth_element, sort, sort_array, sort_by_key,
        verify_sorted, AllToAllAlgo, EpochSorter, EpochStats, ExchangeStrategy, InvalidSortConfig,
        KernelPolicy, Kernels, LocalSort, MergeAlgo, OrderOutOfRange, Partitioning, RecoveryPolicy,
        SortConfig, SortConfigBuilder, SortOutcome, SortStats, WarmStart,
    };
    pub use dhs_pgas::GlobalArray;
    pub use dhs_runtime::{
        run, run_summarized, run_traced, try_run, try_run_partial, try_run_traced, ClusterConfig,
        Comm, PartialRun, RankReport, RunSummary, RunTrace, RunnerEngine, TraceConfig, TracedRun,
    };
    pub use dhs_select::{dmedian, dselect};
    pub use dhs_workloads::{epoch_rank_keys, rank_local_keys, Distribution, EpochProfile, Layout};
}
