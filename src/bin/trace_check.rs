//! `trace_check` — validate a Chrome trace-event JSON file produced by
//! `dhs sort --trace`.
//!
//! ```sh
//! dhs sort --ranks 4 --trace /tmp/trace.json
//! trace_check /tmp/trace.json
//! ```
//!
//! Exits 0 when the file parses as a trace-event JSON object and every
//! rank's same-depth spans are monotone and non-overlapping; exits 1
//! with a diagnostic otherwise. Used by CI as the trace smoke check.

use dhs::runtime::validate_chrome_trace;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: trace_check <trace.json>");
            std::process::exit(2);
        }
    };
    let input = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match validate_chrome_trace(&input) {
        Ok(check) => {
            println!(
                "{path}: OK ({} ranks, {} spans, {} events)",
                check.ranks, check.complete_events, check.instant_events
            );
        }
        Err(e) => {
            eprintln!("trace_check: {path}: INVALID: {e}");
            std::process::exit(1);
        }
    }
}
