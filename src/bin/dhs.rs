//! `dhs` — command-line driver for the distributed histogram sort and
//! its baselines on the simulated cluster.
//!
//! ```sh
//! dhs sort --algo histogram --ranks 64 --nper 65536 --dist zipf
//! dhs sort --algo two-level --ranks 256 --groups 16 --verify
//! dhs sort --threads 4 --verify        # hybrid rank×thread execution
//! dhs serve --ranks 32 --epochs 5 --profile stationary --verify
//! dhs select --ranks 32 --nper 10000 --k 160000
//! dhs topology --ranks 64
//! ```

use dhs::baselines::{
    ams_sort, bitonic_sort, hss_sort, hyksort, psrs, sample_sort, AmsConfig, HssConfig,
    HyksortConfig, PsrsConfig, SampleSortConfig,
};
use dhs::core::global_fingerprint;
use dhs::prelude::*;
use dhs_bench::Args;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let command = if argv.first().is_none_or(|a| a.starts_with("--")) {
        "help".to_string()
    } else {
        argv.remove(0)
    };
    let args = Args::from_args(argv);

    match command.as_str() {
        "sort" => cmd_sort(&args),
        "serve" => cmd_serve(&args),
        "select" => cmd_select(&args),
        "topology" => cmd_topology(&args),
        _ => {
            eprintln!(
                "usage: dhs <sort|serve|select|topology> [--flags]\n\
                 \n\
                 sort     --algo histogram|two-level|hss|sample|psrs|hyksort|ams|bitonic\n\
                 \x20        --ranks N --nper N --dist uniform|normal|zipf|nearly-sorted|\n\
                 \x20        few-distinct|all-equal --layout balanced|sparse|ramp\n\
                 \x20        --eps F --merge resort|tournament|binary|heap|funnel\n\
                 \x20        --local-sort comparison|radix --groups N --seed N --verify\n\
                 \x20        --probes M (histogram probes per splitter per round)\n\
                 \x20        --threads T (intra-rank thread budget)\n\
                 \x20        --recovery abort|shrink (response to rank failures)\n\
                 \x20        --exchange-algo one-factor|bruck|leaders|staged:<k>\n\
                 \x20        --warm-start cold|seeded|seeded-brackets (repeated sorts)\n\
                 \x20        --kernels scalar|auto (local compute-kernel backend)\n\
                 \x20        --engine threads|tasks|tasks:<workers> (execution engine)\n\
                 \x20        --trace out.json --trace-format chrome|summary\n\
                 serve    --ranks N --nper N --epochs E --seed N --verify\n\
                 \x20        --profile stationary|shifting-zipf|churn (epoch stream)\n\
                 \x20        --warm-start cold|seeded|seeded-brackets\n\
                 \x20          (default seeded-brackets; plus all sort flags)\n\
                 \x20        --assert-converged (exit 1 unless the final epoch\n\
                 \x20          needed at most one histogram round)\n\
                 select   --ranks N --nper N --k N --dist ... --seed N\n\
                 topology --ranks N"
            );
        }
    }
}

fn dist_of(args: &Args) -> Distribution {
    match args.raw("dist").unwrap_or("uniform") {
        "uniform" => Distribution::paper_uniform(),
        "uniform-full" => Distribution::Uniform {
            lo: 0,
            hi: u64::MAX,
        },
        "normal" => Distribution::paper_normal(),
        "zipf" => Distribution::Zipf {
            items: 1 << 16,
            s: 1.2,
        },
        "nearly-sorted" => Distribution::NearlySorted {
            perturb_permille: 10,
        },
        "few-distinct" => Distribution::FewDistinct { k: 16 },
        "all-equal" => Distribution::AllEqual { value: 7 },
        other => panic!("unknown distribution {other}"),
    }
}

fn layout_of(args: &Args) -> Layout {
    match args.raw("layout").unwrap_or("balanced") {
        "balanced" => Layout::Balanced,
        "sparse" => Layout::SparseFront {
            empty_permille: 500,
        },
        "ramp" => Layout::Ramp { ratio: 8 },
        other => panic!("unknown layout {other}"),
    }
}

/// Parse `--exchange-algo one-factor|bruck|leaders|staged:<k>`.
fn exchange_algo_of(args: &Args) -> AllToAllAlgo {
    match args.raw("exchange-algo").unwrap_or("one-factor") {
        "one-factor" => AllToAllAlgo::OneFactor,
        "bruck" => AllToAllAlgo::Bruck,
        "leaders" => AllToAllAlgo::HierarchicalLeaders,
        other => match other.strip_prefix("staged:") {
            Some(k) => AllToAllAlgo::StagedKWay {
                k: k.parse().unwrap_or_else(|_| {
                    panic!("--exchange-algo staged:<k> expects an integer fan-out, got {k:?}")
                }),
            },
            None => panic!(
                "unknown exchange algorithm {other} \
                 (expected one-factor|bruck|leaders|staged:<k>)"
            ),
        },
    }
}

/// Parse `--warm-start cold|seeded|seeded-brackets`, defaulting to
/// `default` when the flag is absent (`dhs sort` defaults cold, `dhs
/// serve` defaults seeded-brackets).
fn warm_start_of(args: &Args, default: WarmStart) -> WarmStart {
    match args.raw("warm-start") {
        None => default,
        Some("cold") => WarmStart::Cold,
        Some("seeded") => WarmStart::Seeded,
        Some("seeded-brackets") => WarmStart::SeededWithBrackets,
        Some(other) => {
            panic!("unknown warm-start policy {other} (expected cold|seeded|seeded-brackets)")
        }
    }
}

fn sort_config(args: &Args) -> SortConfig {
    sort_config_with(args, WarmStart::Cold)
}

fn sort_config_with(args: &Args, default_warm: WarmStart) -> SortConfig {
    let mut builder = SortConfig::builder()
        .warm_start(warm_start_of(args, default_warm))
        .epsilon(args.get("eps", 0.0))
        .partitioning(match args.raw("partitioning").unwrap_or("perfect") {
            "perfect" => Partitioning::Perfect,
            "balanced" => Partitioning::Balanced,
            other => panic!("unknown partitioning {other}"),
        })
        .merge(match args.raw("merge").unwrap_or("resort") {
            "resort" => MergeAlgo::Resort,
            "tournament" => MergeAlgo::TournamentTree,
            "binary" => MergeAlgo::BinaryTree,
            "heap" => MergeAlgo::Heap,
            "funnel" => MergeAlgo::Funnel,
            other => panic!("unknown merge engine {other}"),
        })
        .exchange(if args.has("pairwise") {
            ExchangeStrategy::PairwiseMerge {
                overlap: args.has("overlap"),
            }
        } else {
            ExchangeStrategy::AllToAllv
        })
        .local_sort(match args.raw("local-sort").unwrap_or("comparison") {
            "comparison" => LocalSort::Comparison,
            "radix" => LocalSort::Radix,
            other => panic!("unknown local sort {other}"),
        })
        .unique_transform(args.has("unique"))
        .probes_per_round(args.get("probes", 1))
        .threads_per_rank(args.get("threads", 1))
        .recovery(match args.raw("recovery").unwrap_or("abort") {
            "abort" => RecoveryPolicy::Abort,
            "shrink" => RecoveryPolicy::Shrink,
            other => panic!("unknown recovery policy {other} (expected abort|shrink)"),
        })
        .kernels(
            args.raw("kernels")
                .unwrap_or("auto")
                .parse::<KernelPolicy>()
                .unwrap_or_else(|e| panic!("--kernels: {e}")),
        )
        .exchange_algo(exchange_algo_of(args));
    if let Some(iters) = args.raw("max-iters") {
        let iters: u32 = iters
            .parse()
            .unwrap_or_else(|_| panic!("--max-iters expects a positive integer"));
        builder = builder.max_splitter_iterations(iters);
    }
    builder
        .build()
        .unwrap_or_else(|e| panic!("invalid sort configuration: {e}"))
}

fn cmd_sort(args: &Args) {
    let ranks: usize = args.get("ranks", 16);
    let nper: usize = args.get("nper", 1 << 14);
    let seed: u64 = args.get("seed", 1);
    let algo = args.raw("algo").unwrap_or("histogram").to_string();
    let groups: usize = args.get("groups", 0);
    let verify = args.has("verify");
    let trace_path = args.raw("trace").map(str::to_string);
    let dist = dist_of(args);
    let layout = layout_of(args);
    let cfg = sort_config(args);
    let mut cluster = ClusterConfig::supermuc_phase2(ranks);
    if let Some(engine) = args.raw("engine") {
        cluster = cluster.with_engine(engine.parse::<RunnerEngine>().unwrap_or_else(|e| {
            panic!("--engine: {e}");
        }));
    }
    if trace_path.is_some() {
        cluster = cluster.with_trace(TraceConfig::On);
    }
    let n_total = ranks * nper;

    println!(
        "# dhs sort: algo={algo} ranks={ranks} keys/rank={nper} dist={} layout={}",
        dist.label(),
        layout.label()
    );

    type RankOutcome = (Option<SortStats>, usize, bool);
    let algo2 = algo.clone();
    let traced = run_traced(&cluster, move |comm| {
        let mut local = rank_local_keys(dist, layout, n_total, ranks, comm.rank(), seed);
        let fp = verify.then(|| {
            let sp = comm.span("fingerprint");
            let fp = global_fingerprint(comm, &local);
            sp.finish();
            fp
        });
        let stats = match algo2.as_str() {
            "histogram" => Some(histogram_sort(comm, &mut local, &cfg)),
            "two-level" => Some(histogram_sort_two_level(comm, &mut local, &cfg, groups)),
            "hss" => {
                hss_sort(comm, &mut local, &HssConfig::default());
                None
            }
            "sample" => {
                sample_sort(comm, &mut local, &SampleSortConfig::default());
                None
            }
            "psrs" => {
                psrs(comm, &mut local, &PsrsConfig::default());
                None
            }
            "hyksort" => {
                hyksort(comm, &mut local, &HyksortConfig::default());
                None
            }
            "ams" => {
                ams_sort(comm, &mut local, &AmsConfig::default());
                None
            }
            "bitonic" => {
                bitonic_sort(comm, &mut local);
                None
            }
            other => panic!("unknown algorithm {other}"),
        };
        let ok = match fp {
            Some((fp, n)) => {
                let sp = comm.span("verify");
                let ok = verify_sorted(comm, &local, fp, n).is_none();
                sp.finish();
                ok
            }
            None => true,
        };
        (stats, local.len(), ok)
    });
    let out: Vec<(RankOutcome, RankReport)> = traced.ranks;

    let reports: Vec<RankReport> = out.iter().map(|(_, r)| r.clone()).collect();
    let summary = RunSummary::from_reports(&reports);
    let max_keys = out.iter().map(|((_, n, _), _)| *n).max().unwrap_or(0);
    let min_keys = out.iter().map(|((_, n, _), _)| *n).min().unwrap_or(0);
    println!(
        "simulated makespan : {:.3} ms",
        summary.makespan_secs() * 1e3
    );
    println!("inter-node traffic : {} bytes", summary.inter_node_bytes);
    println!("intra-node traffic : {} bytes", summary.intra_node_bytes);
    println!("output keys/rank   : {min_keys}..{max_keys}");
    if let Some(stats) = &out[0].0 .0 {
        println!(
            "phases (rank 0)    : sort {:.3} ms | histogram {:.3} ms ({} iters, {} probes) | \
             exchange {:.3} ms | merge {:.3} ms | other {:.3} ms",
            stats.local_sort_ns as f64 / 1e6,
            stats.histogram_ns as f64 / 1e6,
            stats.iterations,
            stats.probes,
            stats.exchange_ns as f64 / 1e6,
            stats.merge_ns as f64 / 1e6,
            stats.prepare_ns as f64 / 1e6,
        );
        match &stats.outcome {
            SortOutcome::Exact => println!("partitioning       : exact"),
            SortOutcome::Degraded {
                achieved_epsilon,
                iterations,
            } => println!(
                "partitioning       : degraded (achieved eps {achieved_epsilon:.4} \
                 after iteration cap at {iterations})"
            ),
            SortOutcome::Recovered {
                lost_ranks,
                restarts,
                recovery_ns,
            } => println!(
                "partitioning       : recovered (lost ranks {lost_ranks:?}, {restarts} \
                 restart(s), {:.3} ms recovery overhead)",
                *recovery_ns as f64 / 1e6
            ),
        }
    }
    if let Some(path) = &trace_path {
        let json = match args.raw("trace-format").unwrap_or("chrome") {
            "chrome" => traced.trace.to_chrome_json(),
            "summary" => traced.trace.to_summary_json(),
            other => panic!("unknown trace format {other} (expected chrome|summary)"),
        };
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write trace to {path}: {e}"));
        println!("trace              : {path}");
    }
    if verify {
        let ok = out.iter().all(|((_, _, ok), _)| *ok);
        println!("verification       : {}", if ok { "PASS" } else { "FAIL" });
        if !ok {
            std::process::exit(1);
        }
    }
}

/// Parse `--profile stationary|shifting-zipf|churn` for `dhs serve`.
fn profile_of(args: &Args) -> EpochProfile {
    match args.raw("profile").unwrap_or("stationary") {
        "stationary" => EpochProfile::Stationary {
            dist: dist_of(args),
        },
        "shifting-zipf" => EpochProfile::ShiftingZipf {
            items: 1 << 16,
            s: 1.2,
            shift: 1 << 10,
        },
        "churn" => EpochProfile::Churn {
            dist: dist_of(args),
            keep_permille: 900,
        },
        other => panic!("unknown profile {other} (expected stationary|shifting-zipf|churn)"),
    }
}

fn cmd_serve(args: &Args) {
    let ranks: usize = args.get("ranks", 16);
    let nper: usize = args.get("nper", 1 << 14);
    let epochs: u64 = args.get("epochs", 5);
    let seed: u64 = args.get("seed", 1);
    let verify = args.has("verify");
    let assert_converged = args.has("assert-converged");
    let profile = profile_of(args);
    let layout = layout_of(args);
    let cfg = sort_config_with(args, WarmStart::SeededWithBrackets);
    let mut cluster = ClusterConfig::supermuc_phase2(ranks);
    if let Some(engine) = args.raw("engine") {
        cluster = cluster.with_engine(engine.parse::<RunnerEngine>().unwrap_or_else(|e| {
            panic!("--engine: {e}");
        }));
    }
    let n_total = ranks * nper;

    println!(
        "# dhs serve: ranks={ranks} keys/rank={nper} epochs={epochs} profile={} warm-start={:?}",
        profile.label(),
        cfg.warm_start,
    );

    let out = run(&cluster, move |comm| {
        let mut svc: EpochSorter<u64> = EpochSorter::new(comm, cfg.clone());
        let mut history: Vec<EpochStats> = Vec::with_capacity(epochs as usize);
        let mut all_ok = true;
        for epoch in 0..epochs {
            let mut batch =
                epoch_rank_keys(profile, layout, n_total, ranks, comm.rank(), seed, epoch);
            let fp = verify.then(|| global_fingerprint(svc.comm(), &batch));
            let stats = svc.sort_epoch(&mut batch);
            if let Some((fp, n)) = fp {
                all_ok &= verify_sorted(svc.comm(), &batch, fp, n).is_none();
            }
            history.push(stats);
        }
        (history, all_ok)
    });

    let (history, _) = &out[0].0;
    for e in history {
        println!(
            "epoch {:>3}: rounds {:>2} | probes {:>5} | makespan {:>9.3} ms | \
             pool reuse {:>5.1}% | warm ladder {} keys",
            e.epoch,
            e.rounds,
            e.probes,
            e.makespan_ns as f64 / 1e6,
            e.pool.hit_rate() * 100.0,
            e.warm_len,
        );
    }
    if verify {
        let ok = out.iter().all(|((_, ok), _)| *ok);
        println!("verification       : {}", if ok { "PASS" } else { "FAIL" });
        if !ok {
            std::process::exit(1);
        }
    }
    if assert_converged {
        let last = history.last().expect("at least one epoch");
        if last.rounds > 1 {
            eprintln!(
                "assert-converged: final epoch used {} histogram rounds (expected <= 1)",
                last.rounds
            );
            std::process::exit(1);
        }
        println!(
            "convergence        : final epoch at {} round(s)",
            last.rounds
        );
    }
}

fn cmd_select(args: &Args) {
    let ranks: usize = args.get("ranks", 16);
    let nper: usize = args.get("nper", 1 << 14);
    let seed: u64 = args.get("seed", 1);
    let n_total = ranks * nper;
    let k: u64 = args.get("k", (n_total / 2) as u64);
    let dist = dist_of(args);
    let cluster = ClusterConfig::supermuc_phase2(ranks);

    let out = run(&cluster, move |comm| {
        let local = rank_local_keys(dist, Layout::Balanced, n_total, ranks, comm.rank(), seed);
        dselect(comm, &local, k)
    });
    println!(
        "# dhs select: order statistic k={k} of {n_total} keys over {ranks} ranks = {}",
        out[0].0
    );
}

fn cmd_topology(args: &Args) {
    let ranks: usize = args.get("ranks", 32);
    let cluster = ClusterConfig::supermuc_phase2(ranks);
    let t = &cluster.topology;
    println!(
        "# {} ranks on {} nodes ({} ranks/node, {} NUMA domains x {} cores)",
        t.ranks(),
        t.nodes(),
        t.ranks_per_node(),
        t.numa_per_node(),
        t.cores_per_numa()
    );
    for r in 0..ranks.min(64) {
        let p = t.placement(r);
        println!(
            "rank {r:>4}: node {:>3} numa {} core {}",
            p.node, p.numa, p.core
        );
    }
    if ranks > 64 {
        println!("... ({} more ranks)", ranks - 64);
    }
}
