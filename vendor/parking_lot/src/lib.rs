//! Minimal in-tree stand-in for the `parking_lot` crate, backed by
//! `std::sync`. The container building this workspace has no registry
//! access, so the few primitives the runtime actually uses are
//! re-implemented here with the same signatures (no `Result` noise,
//! `Condvar::wait_for` taking a guard by `&mut`).
//!
//! Lock poisoning is deliberately swallowed: a panicking rank must not
//! cascade into `PoisonError` panics on every peer, which matches real
//! parking_lot semantics (its locks have no poisoning at all).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;
use std::time::Duration;

fn unpoison<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(|e| e.into_inner())
}

/// Mutual exclusion primitive; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(unpoison(self.inner.lock())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]. The inner `Option` exists so [`Condvar`] can
/// temporarily take the std guard during a wait and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard present outside of a condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside of a condvar wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        guard.inner = Some(unpoison(self.inner.wait(g)));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present before wait");
        let (g, r) = unpoison(self.inner.wait_timeout(g, timeout));
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: r.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: unpoison(self.inner.read()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: unpoison(self.inner.write()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Arc::new(Mutex::new(0u32));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            *m2.lock() = 7;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while *g != 7 {
            let r = cv.wait_for(&mut g, Duration::from_millis(50));
            let _ = r.timed_out();
        }
        assert_eq!(*g, 7);
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
