//! Minimal in-tree stand-in for the `proptest` crate. The container
//! building this workspace has no registry access, so the subset of
//! the proptest API the test suite uses is re-implemented here:
//! `proptest!` with `pat in strategy` and `name: Type` parameters,
//! ranges / `any` / `Just` / `prop_map` / `prop_oneof!` strategies,
//! float class strategies, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, on purpose:
//! - no shrinking: a failing case reports its index and seed, then
//!   re-panics with the original assertion message;
//! - generation is a fixed-seed SplitMix64 stream per test name, so
//!   every run explores the identical case sequence (fully
//!   deterministic CI);
//! - regression-persistence files (`*.proptest-regressions`) are
//!   ignored.

pub mod arbitrary;
pub mod num;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Deterministic pseudo-random stream (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// (The shim simply returns from the case closure; rejected cases
/// still count against `ProptestConfig::cases`.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($extra:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The `proptest!` block macro: expands each contained function into a
/// `#[test]`-able function that samples its parameter strategies for
/// `ProptestConfig::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! { ($cfg) $name [] [$($params)*] $body }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters munched: run the cases.
    (($cfg:expr) $name:ident [$(($pat:pat, $strat:expr))*] [] $body:block) => {{
        let __cfg: $crate::test_runner::ProptestConfig = $cfg;
        let __strategy = ($($strat,)*);
        $crate::test_runner::run_cases(
            &__cfg,
            stringify!($name),
            __strategy,
            move |($($pat,)*)| $body,
        );
    }};
    // `name: Type` parameter — sugar for `name in any::<Type>()`.
    (($cfg:expr) $name:ident [$($acc:tt)*] [$id:ident : $ty:ty, $($rest:tt)*] $body:block) => {
        $crate::__proptest_case! {
            ($cfg) $name [$($acc)* ($id, $crate::arbitrary::any::<$ty>())] [$($rest)*] $body
        }
    };
    (($cfg:expr) $name:ident [$($acc:tt)*] [$id:ident : $ty:ty] $body:block) => {
        $crate::__proptest_case! {
            ($cfg) $name [$($acc)* ($id, $crate::arbitrary::any::<$ty>())] [] $body
        }
    };
    // `pat in strategy` parameter.
    (($cfg:expr) $name:ident [$($acc:tt)*] [$pat:pat in $strat:expr, $($rest:tt)*] $body:block) => {
        $crate::__proptest_case! { ($cfg) $name [$($acc)* ($pat, $strat)] [$($rest)*] $body }
    };
    (($cfg:expr) $name:ident [$($acc:tt)*] [$pat:pat in $strat:expr] $body:block) => {
        $crate::__proptest_case! { ($cfg) $name [$($acc)* ($pat, $strat)] [] $body }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Shape {
        Dot,
        Line(usize),
    }

    fn arb_shape() -> impl Strategy<Value = Shape> {
        prop_oneof![Just(Shape::Dot), (1usize..5).prop_map(Shape::Line),]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3usize..17,
            b in -5i64..5,
            f in 0.25f64..0.75,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn any_and_type_sugar(x: u32, flag: bool) {
            let widened = x as u64;
            prop_assert_eq!(widened as u32, x);
            if flag {
                prop_assert!(flag);
            }
        }

        #[test]
        fn oneof_and_map_cover_variants(s in arb_shape()) {
            match s {
                Shape::Dot => {}
                Shape::Line(n) => prop_assert!((1..5).contains(&n)),
            }
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    proptest! {
        #[test]
        fn float_classes_generate_their_class(
            a in crate::num::f64::NORMAL | crate::num::f64::ZERO,
            b in crate::num::f32::SUBNORMAL | crate::num::f32::INFINITE,
        ) {
            prop_assert!(a.is_normal() || a == 0.0);
            prop_assert!(b.is_subnormal() || b.is_infinite());
        }
    }

    #[test]
    fn same_name_same_sequence() {
        use crate::strategy::Strategy;
        let cfg = ProptestConfig {
            cases: 20,
            ..ProptestConfig::default()
        };
        let mut first = Vec::new();
        let mut second = Vec::new();
        crate::test_runner::run_cases(&cfg, "determinism", (0u64..1000,), |(v,)| first.push(v));
        crate::test_runner::run_cases(&cfg, "determinism", (0u64..1000,), |(v,)| second.push(v));
        assert_eq!(first, second);
        let _ = (0u64..10).prop_map(|x| x + 1);
    }
}
