//! Float class strategies (`proptest::num::f64::NORMAL | ZERO | ...`).
//! Each constant is a one-bit class set; `|` unions them and sampling
//! first picks a class uniformly among those present, then draws a
//! member of that class by assembling sign/exponent/mantissa bits.

macro_rules! float_classes {
    ($mod:ident, $float:ty, $bits:ty, $mant_bits:expr, $exp_bits:expr) => {
        pub mod $mod {
            use crate::strategy::Strategy;
            use crate::TestRng;

            const MANT_BITS: u32 = $mant_bits;
            const EXP_BITS: u32 = $exp_bits;
            const MANT_MASK: $bits = (1 << MANT_BITS) - 1;
            const EXP_MAX: $bits = (1 << EXP_BITS) - 1;
            const SIGN_SHIFT: u32 = MANT_BITS + EXP_BITS;

            /// A set of IEEE-754 value classes, usable as a strategy.
            #[derive(Clone, Copy, Debug, PartialEq, Eq)]
            pub struct FloatClasses(u8);

            pub const NORMAL: FloatClasses = FloatClasses(1 << 0);
            pub const ZERO: FloatClasses = FloatClasses(1 << 1);
            pub const SUBNORMAL: FloatClasses = FloatClasses(1 << 2);
            pub const INFINITE: FloatClasses = FloatClasses(1 << 3);

            impl std::ops::BitOr for FloatClasses {
                type Output = FloatClasses;
                fn bitor(self, rhs: FloatClasses) -> FloatClasses {
                    FloatClasses(self.0 | rhs.0)
                }
            }

            impl Strategy for FloatClasses {
                type Value = $float;
                fn sample(&self, rng: &mut TestRng) -> $float {
                    let classes: Vec<u8> = (0..4).filter(|b| self.0 & (1 << b) != 0).collect();
                    assert!(!classes.is_empty(), "empty float class set");
                    let class = classes[rng.below(classes.len())];
                    let sign = ((rng.next_u64() & 1) as $bits) << SIGN_SHIFT;
                    let bits: $bits = match class {
                        // NORMAL: exponent in [1, EXP_MAX - 1].
                        0 => {
                            let exp = 1 + (rng.next_u64() as $bits) % (EXP_MAX - 1);
                            let mant = (rng.next_u64() as $bits) & MANT_MASK;
                            sign | (exp << MANT_BITS) | mant
                        }
                        // ZERO: +0.0 or -0.0.
                        1 => sign,
                        // SUBNORMAL: zero exponent, non-zero mantissa.
                        2 => {
                            let mant = 1 + (rng.next_u64() as $bits) % MANT_MASK;
                            sign | mant
                        }
                        // INFINITE: max exponent, zero mantissa.
                        _ => sign | (EXP_MAX << MANT_BITS),
                    };
                    <$float>::from_bits(bits)
                }
            }
        }
    };
}

float_classes!(f64, f64, u64, 52, 11);
float_classes!(f32, f32, u32, 23, 8);

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::TestRng;

    #[test]
    fn classes_produce_members() {
        let mut rng = TestRng::new(42);
        for _ in 0..500 {
            let n = super::f64::NORMAL.sample(&mut rng);
            assert!(n.is_normal(), "{n} not normal");
            let z = super::f64::ZERO.sample(&mut rng);
            assert_eq!(z, 0.0);
            let s = super::f64::SUBNORMAL.sample(&mut rng);
            assert!(
                s != 0.0 && !s.is_normal() && s.is_finite(),
                "{s} not subnormal"
            );
            let i = super::f64::INFINITE.sample(&mut rng);
            assert!(i.is_infinite());
            let f = (super::f32::NORMAL | super::f32::ZERO).sample(&mut rng);
            assert!(f.is_normal() || f == 0.0);
        }
    }
}
