//! The [`Strategy`] trait and the combinators the workspace's tests
//! use: ranges, [`Just`], [`Map`], [`Union`], tuples, and boxing.

use std::ops::Range;

use crate::TestRng;

/// A recipe for generating values. Unlike real proptest there is no
/// value tree / shrinking — `sample` draws a single concrete value.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Uniform choice over boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Self { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.variants.len());
        self.variants[ix].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let off = (rng.next_u64() as $wide) % span;
                self.start.wrapping_add(off as $t)
            }
        }
    )+};
}

int_range_strategy! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for () {
    type Value = ();
    fn sample(&self, _rng: &mut TestRng) {}
}

macro_rules! tuple_strategy {
    ($($s:ident . $ix:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
