//! `any::<T>()` for the primitive types the tests draw without an
//! explicit strategy. Integers and floats come from raw SplitMix64
//! bits, so `any::<f64>()` can produce NaNs and infinities — tests
//! that need comparable floats filter with `prop_assume!`.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::TestRng;

pub trait Arbitrary {
    fn arbitrary_from(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<fn() -> T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_from(rng)
    }
}

macro_rules! arbitrary_from_bits {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary_from(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_from_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary_from(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary_from(rng: &mut TestRng) -> i128 {
        u128::arbitrary_from(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary_from(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_from(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary_from(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}
