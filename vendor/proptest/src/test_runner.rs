//! Case driver for the `proptest!` macro.

use crate::strategy::Strategy;
use crate::TestRng;

/// Subset of proptest's run configuration. Only `cases` is honored;
/// construction sites use `ProptestConfig { cases: N, ..default() }`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility with real proptest; the shim
    /// does not shrink, so this is never read.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// FNV-1a over the test name: a stable per-test seed so each test
/// explores its own — but across runs identical — case sequence.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Draw `cfg.cases` values from `strategy` and run `case` on each.
/// On panic, report the failing case index and seed, then re-raise the
/// original panic so the assertion message reaches the harness.
pub fn run_cases<S, F>(cfg: &ProptestConfig, name: &str, strategy: S, mut case: F)
where
    S: Strategy,
    F: FnMut(S::Value),
{
    let seed = seed_for(name);
    let mut rng = TestRng::new(seed);
    for ix in 0..cfg.cases {
        let value = strategy.sample(&mut rng);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(value)));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest `{name}`: case {ix}/{} failed (seed {seed:#x}; \
                 fixed-seed shim, rerun reproduces this case)",
                cfg.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}
