//! Minimal in-tree stand-in for the `criterion` crate: enough to
//! compile and run the workspace's `harness = false` benches without
//! registry access. Each `bench_function` runs its routine
//! `sample_size` times and prints min/median wall times — no HTML
//! reports, no statistical machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are amortized. The shim runs one routine call
/// per setup call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group<N: Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }

    pub fn bench_function<N, F>(&mut self, name: N, mut routine: F) -> &mut Self
    where
        N: Display,
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_size, &mut routine);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<N, F>(&mut self, name: N, mut routine: F) -> &mut Self
    where
        N: Display,
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&name.to_string(), samples, &mut routine);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, routine: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        per_call: samples,
    };
    routine(&mut bencher);
    let mut times = bencher.samples;
    if times.is_empty() {
        println!("  {name}: no samples");
        return;
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    println!(
        "  {name}: min {min:?}, median {median:?} ({} samples)",
        times.len()
    );
}

pub struct Bencher {
    samples: Vec<Duration>,
    per_call: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.per_call {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.per_call {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![3, 1, 2],
                |mut v| v.sort_unstable(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(7u64).pow(2)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_main_macros_run() {
        benches();
    }
}
