//! The epoch service's contract: warm-starting is an *optimization
//! surface only*. For every stream, every policy, every engine and
//! every thread budget, epoch outputs are byte-identical to a
//! cold-start sort of the same batch — and on stationary streams the
//! seeded-brackets policy collapses splitter search to at most one
//! histogram round from epoch 3 onward.

use dhs_core::{histogram_sort, EpochSorter, RecoveryPolicy, SortConfig, SortOutcome, WarmStart};
use dhs_runtime::{run, try_run_partial, ClusterConfig, FaultPlan, RunnerEngine};
use dhs_workloads::{epoch_rank_keys, Distribution, EpochProfile, Layout};
use proptest::prelude::*;

fn policy(ws: WarmStart) -> SortConfig {
    SortConfig::builder()
        .warm_start(ws)
        .build()
        .expect("valid config")
}

fn profiles() -> Vec<EpochProfile> {
    vec![
        EpochProfile::Stationary {
            dist: Distribution::paper_uniform(),
        },
        EpochProfile::ShiftingZipf {
            items: 1 << 10,
            s: 1.2,
            shift: 64,
        },
        EpochProfile::Churn {
            dist: Distribution::paper_uniform(),
            keep_permille: 900,
        },
    ]
}

/// Run `epochs` epochs of `profile` under `ws` and return, per rank,
/// the per-epoch `(output, rounds, makespan_ns)` triples.
fn run_stream(
    cluster: &ClusterConfig,
    profile: EpochProfile,
    ws: WarmStart,
    p: usize,
    n_total: usize,
    epochs: u64,
    seed: u64,
) -> Vec<Vec<(Vec<u64>, u32, u64)>> {
    let cfg = policy(ws);
    run(cluster, move |comm| {
        let mut svc: EpochSorter<u64> = EpochSorter::new(comm, cfg.clone());
        (0..epochs)
            .map(|e| {
                let mut batch =
                    epoch_rank_keys(profile, Layout::Balanced, n_total, p, comm.rank(), seed, e);
                let stats = svc.sort_epoch(&mut batch);
                (batch, stats.rounds, stats.makespan_ns)
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .map(|(v, _)| v)
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Seeded epochs are byte-identical to a cold one-shot sort of the
    /// same batch, for every drift profile and warm policy.
    #[test]
    fn seeded_epochs_match_cold_byte_for_byte(
        p in 2usize..9,
        seed in 0u64..1000,
        prof_ix in 0usize..3,
        ws in prop_oneof![Just(WarmStart::Seeded), Just(WarmStart::SeededWithBrackets)],
    ) {
        let profile = profiles()[prof_ix];
        let n_total = 64 * p;
        let epochs = 4u64;
        let cluster = ClusterConfig::small_cluster(p);
        let warm = run_stream(&cluster, profile, ws, p, n_total, epochs, seed);
        let cold = run_stream(&cluster, profile, WarmStart::Cold, p, n_total, epochs, seed);
        for rank in 0..p {
            for e in 0..epochs as usize {
                prop_assert_eq!(
                    &warm[rank][e].0, &cold[rank][e].0,
                    "rank {} epoch {}: warm output differs from cold", rank, e
                );
            }
        }
    }

    /// The whole multi-epoch stream is deterministic across execution
    /// engines (threads vs tasks) and intra-rank thread budgets
    /// (t ∈ {1, 4}): outputs, rounds, and virtual makespans all agree
    /// byte-for-byte.
    #[test]
    fn epoch_streams_deterministic_across_engines_and_threads(
        seed in 0u64..1000,
        prof_ix in 0usize..3,
    ) {
        let p = 4;
        let profile = profiles()[prof_ix];
        let n_total = 256 * p;
        let epochs = 3u64;
        let mut reference = None;
        for engine in [RunnerEngine::Threads, RunnerEngine::Tasks { workers: 0 }] {
            for threads in [1usize, 4] {
                let cluster = ClusterConfig::small_cluster(p).with_engine(engine);
                let cfg = SortConfig::builder()
                    .warm_start(WarmStart::SeededWithBrackets)
                    .threads_per_rank(threads)
                    .build()
                    .expect("valid config");
                let out = run(&cluster, move |comm| {
                    let mut svc: EpochSorter<u64> = EpochSorter::new(comm, cfg.clone());
                    (0..epochs)
                        .map(|e| {
                            let mut batch = epoch_rank_keys(
                                profile, Layout::Balanced, n_total, p, comm.rank(), seed, e,
                            );
                            let stats = svc.sort_epoch(&mut batch);
                            (batch, stats.rounds, stats.makespan_ns)
                        })
                        .collect::<Vec<_>>()
                });
                let got: Vec<_> = out.into_iter().map(|(v, _)| v).collect();
                match &reference {
                    None => reference = Some(got),
                    Some(want) => prop_assert_eq!(
                        want, &got,
                        "engine {:?} x t={} diverged from threads x t=1", engine, threads
                    ),
                }
            }
        }
    }
}

/// The headline: a stationary stream under seeded-brackets needs at
/// most one histogram round from epoch 3 (index 2) onward, at several
/// world sizes.
#[test]
fn stationary_stream_collapses_to_one_round() {
    for p in [4usize, 8, 16] {
        let n_total = 512 * p;
        let cluster = ClusterConfig::small_cluster(p);
        let profile = EpochProfile::Stationary {
            dist: Distribution::paper_uniform(),
        };
        let out = run_stream(
            &cluster,
            profile,
            WarmStart::SeededWithBrackets,
            p,
            n_total,
            5,
            7,
        );
        let rounds: Vec<u32> = out[0].iter().map(|(_, r, _)| *r).collect();
        assert!(
            rounds.iter().skip(2).all(|&r| r <= 1),
            "p={p}: rounds per epoch {rounds:?} (expected <= 1 from epoch 3 on)"
        );
        // Cold never collapses at these sizes — the warm start is
        // doing the work, not the data.
        let cold = run_stream(&cluster, profile, WarmStart::Cold, p, n_total, 5, 7);
        let cold_rounds: Vec<u32> = cold[0].iter().map(|(_, r, _)| *r).collect();
        assert!(
            cold_rounds.iter().all(|&r| r > 1),
            "p={p}: cold rounds {cold_rounds:?} should not collapse"
        );
    }
}

/// Warm-start composes with shrink-and-recover: a rank crash in the
/// middle of the stream shrinks the world, the epoch that lost the
/// rank reports `Recovered`, and later epochs keep sorting (and keep
/// their outputs equal to a cold sort on the survivors).
#[test]
fn warm_start_survives_shrink_recovery() {
    let p = 8;
    let n_per = 2000;
    let victim = 3;
    let epochs = 4u64;
    let seed = 11;
    let profile = EpochProfile::Stationary {
        dist: Distribution::paper_uniform(),
    };
    // The victim dies mid-sort in the first epoch; the survivors
    // shrink once and run the remaining epochs at p - 1.
    let cluster =
        ClusterConfig::small_cluster(p).with_fault(FaultPlan::seeded(1).with_crash(victim, 50_000));
    let cfg = SortConfig::builder()
        .warm_start(WarmStart::SeededWithBrackets)
        .recovery(RecoveryPolicy::Shrink)
        .build()
        .expect("valid config");
    let out = try_run_partial(&cluster, move |comm| {
        let mut svc: EpochSorter<u64> = EpochSorter::new(comm, cfg.clone());
        (0..epochs)
            .map(|e| {
                let mut batch = epoch_rank_keys(
                    profile,
                    Layout::Balanced,
                    n_per * p,
                    p,
                    comm.rank(),
                    seed,
                    e,
                );
                let stats = svc.sort_epoch(&mut batch);
                (batch, stats.sort.outcome.clone())
            })
            .collect::<Vec<_>>()
    });

    assert!(out.ranks[victim].is_err(), "the victim itself must fail");
    let mut recovered_anywhere = false;
    let mut survivor_epochs: Vec<Vec<Vec<u64>>> = Vec::new();
    for (rank, res) in out.ranks.iter().enumerate() {
        if rank == victim {
            continue;
        }
        let (epochs_out, _) = res.as_ref().unwrap_or_else(|e| {
            panic!("survivor {rank} failed: {e}");
        });
        assert_eq!(epochs_out.len(), epochs as usize, "rank {rank} fell short");
        for (batch, outcome) in epochs_out {
            assert!(batch.windows(2).all(|w| w[0] <= w[1]), "rank {rank}");
            if let SortOutcome::Recovered { lost_ranks, .. } = outcome {
                assert_eq!(lost_ranks, &vec![victim]);
                recovered_anywhere = true;
            }
        }
        survivor_epochs.push(epochs_out.iter().map(|(b, _)| b.clone()).collect());
    }
    assert!(recovered_anywhere, "no epoch reported a recovery");

    // Post-crash epochs equal a cold histogram sort of the survivors'
    // batches: replay the survivors' world at p-1 and compare the
    // final epoch's global multiset + order.
    let last: Vec<u64> = {
        let mut all: Vec<u64> = survivor_epochs
            .iter()
            .flat_map(|per_rank| per_rank.last().expect("epochs >= 1").clone())
            .collect();
        all.sort_unstable();
        all
    };
    let mut want: Vec<u64> = (0..p)
        .filter(|&r| r != victim)
        .flat_map(|r| epoch_rank_keys(profile, Layout::Balanced, n_per * p, p, r, seed, epochs - 1))
        .collect();
    want.sort_unstable();
    assert_eq!(
        last, want,
        "final epoch must be the survivors' sorted union"
    );
}

/// A service configured cold behaves like independent one-shot sorts:
/// same rounds every epoch of a stationary stream (nothing carries
/// over), and identical to calling `histogram_sort` directly.
#[test]
fn cold_service_is_a_oneshot_sort_per_epoch() {
    let p = 6;
    let n_total = 300 * p;
    let seed = 3;
    let profile = EpochProfile::Stationary {
        dist: Distribution::paper_uniform(),
    };
    let cluster = ClusterConfig::small_cluster(p);
    let svc_out = run_stream(&cluster, profile, WarmStart::Cold, p, n_total, 3, seed);
    let rounds: Vec<u32> = svc_out[0].iter().map(|(_, r, _)| *r).collect();
    assert!(
        rounds.windows(2).all(|w| w[0] == w[1]),
        "cold epochs must not influence each other: {rounds:?}"
    );
    let direct = run(&cluster, move |comm| {
        let mut batch =
            epoch_rank_keys(profile, Layout::Balanced, n_total, p, comm.rank(), seed, 0);
        histogram_sort(comm, &mut batch, &SortConfig::default());
        batch
    });
    for (rank, (d, _)) in direct.into_iter().enumerate() {
        for (e, (out, _, _)) in svc_out[rank].iter().enumerate() {
            assert_eq!(out, &d, "rank {rank} epoch {e}");
        }
    }
}
