//! The multi-probe bisection contract (property-based): for any data,
//! any rank count and any slack, the splitter search at
//! `probes_per_round ∈ {3, 7}` must accept exactly the splitter keys,
//! realized boundaries, and `degraded` flag of the classic
//! single-probe loop — a finer probe grid replays the same bisection
//! path, it can only accept *earlier* — while the round count drops to
//! `⌈steps / log₂(m+1)⌉` (plus restart head-room).

use dhs::core::{
    find_splitters_cfg, perfect_targets, slack_for, InitialBounds, SplitterOptions, SplitterResult,
};
use dhs::runtime::{run, ClusterConfig};
use proptest::prelude::*;

fn keys_for(rank: usize, n: usize, modulus: u64, seed: u64) -> Vec<u64> {
    let mut x = (rank as u64 + 1)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(seed)
        | 1;
    let mut v: Vec<u64> = (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % modulus
        })
        .collect();
    v.sort_unstable();
    v
}

fn search(
    p: usize,
    n_per: usize,
    modulus: u64,
    seed: u64,
    epsilon: f64,
    opts: SplitterOptions,
) -> SplitterResult<u64> {
    let out = run(&ClusterConfig::small_cluster(p), move |comm| {
        let local = keys_for(comm.rank(), n_per, modulus, seed);
        let caps: Vec<usize> = comm.allgather(local.len());
        let targets = perfect_targets(&caps);
        let n_total: u64 = caps.iter().map(|&c| c as u64).sum();
        let slack = slack_for(n_total, p, epsilon);
        find_splitters_cfg(comm, &local, &targets, slack, opts)
    });
    out.into_iter().next().expect("p >= 1").0
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Grid invariance: splitter keys, realized boundaries, and the
    /// degraded flag are identical across m ∈ {1, 3, 7}, under both
    /// acceptance rules, with duplicates, slack, and iteration caps in
    /// play; and the m-round count respects the tree-depth bound.
    #[test]
    fn results_identical_across_probe_grids(
        p in 2usize..8,
        n_per in 20usize..300,
        modulus_bits in 3u32..40,
        seed in 0u64..1_000_000,
        epsilon in prop_oneof![Just(0.0), Just(0.01), Just(0.1)],
        strict in any::<bool>(),
        cap in prop_oneof![Just(None), Just(Some(3u32)), Just(Some(8u32))],
    ) {
        let modulus = 1u64 << modulus_bits;
        let base_opts = SplitterOptions {
            strict_paper_rule: strict,
            max_iterations: cap,
            ..SplitterOptions::default()
        };
        let base = search(p, n_per, modulus, seed, epsilon, base_opts);
        for m in [3usize, 7] {
            let multi = search(p, n_per, modulus, seed, epsilon, SplitterOptions {
                probes_per_round: m,
                ..base_opts
            });
            let d = (m as u64 + 1).ilog2();
            if base.degraded {
                // The cap froze the classic search mid-descent. The
                // finer grid gets d steps per round, so it may have
                // legitimately converged (or frozen elsewhere); only
                // the shape is comparable.
                prop_assert_eq!(multi.splitters.len(), base.splitters.len());
            } else {
                // The classic search converged in `base.iterations`
                // steps, so the grid converges in at most
                // ⌈steps / d⌉ rounds — inside any cap the classic
                // search met — onto the identical splitters.
                prop_assert!(!multi.degraded, "m={} must converge too", m);
                prop_assert_eq!(
                    &multi.splitters, &base.splitters,
                    "m={} must accept identical splitters", m
                );
                prop_assert!(
                    multi.iterations <= base.iterations.div_ceil(d),
                    "m={}: {} rounds vs {} steps", m, multi.iterations, base.iterations
                );
            }
        }
    }

    /// The uncapped round count respects `⌈(BITS + 2) / d⌉` for
    /// min/max initial bounds (no restarts possible), and index
    /// brackets never change any result field.
    #[test]
    fn round_bound_and_bracket_neutrality(
        p in 2usize..8,
        n_per in 20usize..200,
        modulus_bits in 3u32..40,
        seed in 0u64..1_000_000,
        m in prop_oneof![Just(1usize), Just(3), Just(7), Just(15)],
    ) {
        let modulus = 1u64 << modulus_bits;
        let opts = SplitterOptions {
            probes_per_round: m,
            ..SplitterOptions::default()
        };
        let on = search(p, n_per, modulus, seed, 0.0, opts);
        let d = (m as u64 + 1).ilog2();
        prop_assert!(
            on.iterations <= (64 + 2u32).div_ceil(d),
            "m={}: {} rounds exceeds the tree-depth bound", m, on.iterations
        );
        let off = search(p, n_per, modulus, seed, 0.0, SplitterOptions {
            index_brackets: false,
            ..opts
        });
        prop_assert_eq!(on.splitters, off.splitters);
        prop_assert_eq!(on.iterations, off.iterations);
        prop_assert_eq!(on.probes, off.probes);
        prop_assert_eq!(on.degraded, off.degraded);
    }

    /// Sampled-quantile starts can restart mid-descent; the
    /// grid-invariance of the *final partition* must survive that.
    #[test]
    fn sampled_starts_agree_on_boundaries(
        p in 2usize..7,
        n_per in 30usize..200,
        seed in 0u64..1_000_000,
    ) {
        let realized = |m: usize| {
            let res = search(p, n_per, 1 << 20, seed, 0.0, SplitterOptions {
                init: InitialBounds::SampledQuantiles { per_rank: 2 },
                probes_per_round: m,
                ..SplitterOptions::default()
            });
            res.splitters.iter().map(|s| s.realized).collect::<Vec<_>>()
        };
        let base = realized(1);
        prop_assert_eq!(realized(3), base.clone());
        prop_assert_eq!(realized(7), base);
    }
}
