//! All six distributed sorters must produce the *same* globally sorted
//! sequence (when concatenated by rank) on the same input — the
//! cross-algorithm oracle for the baseline implementations.

use dhs::baselines::{run_algorithm, Algorithm};
use dhs::runtime::{run, ClusterConfig};
use dhs::workloads::{rank_local_keys, Distribution, Layout};

fn global_output(algo: Algorithm, p: usize, n_total: usize, dist: Distribution) -> Vec<u64> {
    let out = run(&ClusterConfig::small_cluster(p), move |comm| {
        let mut local = rank_local_keys(dist, Layout::Balanced, n_total, p, comm.rank(), 77);
        run_algorithm(comm, algo, &mut local);
        local
    });
    out.into_iter().flat_map(|(l, _)| l).collect()
}

#[test]
fn agree_on_uniform_keys() {
    let p = 8;
    let n = 8 * 512;
    let dist = Distribution::paper_uniform();
    let reference = global_output(Algorithm::HistogramSort, p, n, dist);
    let mut sorted_ref = reference.clone();
    sorted_ref.sort_unstable();
    assert_eq!(reference, sorted_ref, "reference itself must be sorted");
    for algo in Algorithm::ALL {
        assert_eq!(global_output(algo, p, n, dist), reference, "{algo:?}");
    }
}

#[test]
fn agree_on_adversarial_distributions() {
    let p = 4;
    let n = 4 * 300;
    for dist in [
        Distribution::Normal {
            mean: 0.0,
            std_dev: 1.0,
        },
        Distribution::Zipf { items: 32, s: 1.3 },
        Distribution::NearlySorted {
            perturb_permille: 15,
        },
        Distribution::FewDistinct { k: 2 },
        Distribution::AllEqual { value: 9 },
    ] {
        let reference = global_output(Algorithm::HistogramSort, p, n, dist);
        for algo in Algorithm::ALL {
            if !algo.supports(p, true) {
                continue;
            }
            assert_eq!(
                global_output(algo, p, n, dist),
                reference,
                "{algo:?} on {dist:?}"
            );
        }
    }
}

#[test]
fn agree_on_non_power_of_two_ranks() {
    let p = 6;
    let n = 6 * 256;
    let dist = Distribution::paper_uniform();
    let reference = global_output(Algorithm::HistogramSort, p, n, dist);
    for algo in Algorithm::ALL {
        if !algo.supports(p, true) {
            continue; // bitonic sits this one out, like the Charm++ code
        }
        assert_eq!(global_output(algo, p, n, dist), reference, "{algo:?}");
    }
}
