//! The fault-injection contract: injected faults change *virtual time*
//! (and, for crashes, liveness) but never the *data* a surviving
//! computation produces; every fault is a pure function of the plan
//! seed, so faulty runs replay bit-for-bit.

use dhs::core::{histogram_sort, ExchangeStrategy, SortConfig, SortOutcome};
use dhs::runtime::fault::RankError;
use dhs::runtime::{
    run, run_summarized, try_run, ClusterConfig, FaultPlan, LinkClass, LinkFault, LossSpec,
};
use dhs::workloads::{rank_local_keys, Distribution, Layout};
use proptest::prelude::*;

/// Run every collective once and return all data results, bit-for-bit
/// comparable across fault plans.
fn collective_suite(cfg: &ClusterConfig, seed: u64) -> Vec<CollectiveOutputs> {
    let out = run(cfg, move |comm| {
        let me = comm.rank() as u64;
        let p = comm.size();
        comm.barrier();
        let bcast = comm.broadcast(0, seed.wrapping_mul(31));
        let reduce = comm.allreduce_sum(vec![me + seed % 11, me * me]);
        let gather = comm.allgather(me * 3 + seed % 5);
        let send: Vec<Vec<u64>> = (0..p)
            .map(|d| vec![me * 1000 + d as u64; (seed as usize + d) % 4])
            .collect();
        let a2a: Vec<Vec<u64>> = comm
            .exchange(send, dhs::runtime::AllToAllAlgo::OneFactor)
            .into_vecs();
        let scan = comm.exscan_sum_vec(vec![me + 1]);
        let peer = (comm.rank() + 1) % p;
        let from = (comm.rank() + p - 1) % p;
        comm.send(peer, 9, vec![me; 8]);
        let ring = comm.recv(from, 9);
        CollectiveOutputs {
            bcast,
            reduce,
            gather,
            a2a,
            scan,
            ring,
        }
    });
    out.into_iter().map(|(v, _)| v).collect()
}

#[derive(Debug, PartialEq, Eq)]
struct CollectiveOutputs {
    bcast: u64,
    reduce: Vec<u64>,
    gather: Vec<u64>,
    a2a: Vec<Vec<u64>>,
    scan: Vec<u64>,
    ring: Vec<u64>,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Stragglers, degraded links and lossy transports reshape virtual
    /// time, but every collective must still return exactly the
    /// fault-free data on every rank.
    #[test]
    fn collectives_agree_bitwise_under_faults(
        p in 2usize..9,
        seed in 0u64..100_000,
        straggler_rank in 0usize..9,
        factor_tenths in 11u64..80,
        beta_tenths in 10u64..50,
        loss_pct in 0u64..40,
    ) {
        let clean = ClusterConfig::small_cluster(p);
        let plan = FaultPlan::seeded(seed ^ 0xFA_117)
            .with_straggler(straggler_rank % p, factor_tenths as f64 / 10.0)
            .with_link_fault(LinkFault {
                class: Some(LinkClass::IntraNode),
                extra_alpha_ns: 5_000.0,
                beta_factor: beta_tenths as f64 / 10.0,
                from_ns: 0,
                until_ns: u64::MAX,
            })
            .with_loss(LossSpec {
                rate: loss_pct as f64 / 100.0,
                timeout_ns: 10_000,
                max_retries: 16,
                duplicate_rate: loss_pct as f64 / 200.0,
                backoff_factor: 1.0,
            });
        let faulty = clean.clone().with_fault(plan);
        prop_assert_eq!(collective_suite(&clean, seed), collective_suite(&faulty, seed));
    }

    /// The full sort under a lossy, duplicating transport (pairwise
    /// exchange = pure p2p) must produce exactly the fault-free output:
    /// retried and duplicated chunks are deduplicated by sequence
    /// number, so the merge consumes each chunk exactly once.
    #[test]
    fn lossy_pairwise_sort_matches_fault_free(
        p in 2usize..7,
        n_per in 50usize..300,
        seed in 0u64..50_000,
        loss_pct in 1u64..35,
    ) {
        let cfg = SortConfig::builder()
            .exchange(ExchangeStrategy::PairwiseMerge { overlap: false })
            .build()
            .expect("valid config");
        let sort_under = |cluster: &ClusterConfig| {
            let cfg = cfg.clone();
            let out = run(cluster, move |comm| {
                let mut local = rank_local_keys(
                    Distribution::paper_uniform(),
                    Layout::Balanced,
                    p * n_per,
                    p,
                    comm.rank(),
                    seed,
                );
                histogram_sort(comm, &mut local, &cfg);
                local
            });
            out.into_iter().map(|(v, _)| v).collect::<Vec<_>>()
        };
        let clean = ClusterConfig::small_cluster(p);
        let faulty = clean.clone().with_fault(FaultPlan::seeded(seed).with_loss(LossSpec {
            rate: loss_pct as f64 / 100.0,
            timeout_ns: 20_000,
            max_retries: 16,
            duplicate_rate: loss_pct as f64 / 100.0,
            backoff_factor: 1.0,
        }));
        prop_assert_eq!(sort_under(&clean), sort_under(&faulty));
    }
}

/// The acceptance scenario: rank k crashes mid-sort on a 32-rank
/// cluster. The run must return (not deadlock), name rank k as the root
/// cause, and replay identically — same failed set, same counters on
/// the survivors.
#[test]
fn crash_during_sort_is_reported_and_deterministic() {
    let p = 32;
    let crashed_rank = 13;
    let go = || {
        // Crash deadline chosen inside the run: compute+histogram are
        // well past 50us at this size, so the rank dies mid-pipeline.
        let cluster = ClusterConfig::supermuc_phase2(p)
            .with_fault(FaultPlan::seeded(7).with_crash(crashed_rank, 50_000));
        try_run(&cluster, move |comm| {
            let mut local = rank_local_keys(
                Distribution::paper_uniform(),
                Layout::Balanced,
                p * 2000,
                p,
                comm.rank(),
                3,
            );
            histogram_sort(comm, &mut local, &SortConfig::default());
            local.len()
        })
    };
    let err = go().expect_err("crashed rank must fail the run");
    let roots: Vec<&RankError> = err.root_causes().collect();
    assert_eq!(roots.len(), 1, "exactly one root cause");
    match roots[0] {
        RankError::Crashed { rank, at_ns } => {
            assert_eq!(*rank, crashed_rank);
            assert_eq!(*at_ns, 50_000);
        }
        other => panic!("expected Crashed, got {other:?}"),
    }
    // Peers blocked on the dead rank surface as collateral, never as
    // spurious root causes.
    assert!(err.failed_ranks().contains(&crashed_rank));
    for e in &err.failed {
        assert!(e.rank() < p);
    }

    // Deterministic replay: identical failure set and identical
    // counter snapshots from the ranks that completed.
    let err2 = go().expect_err("replay must fail identically");
    assert_eq!(err.failed_ranks(), err2.failed_ranks());
    assert_eq!(err.completed_reports, err2.completed_reports);
}

/// A crash inside a collective must not deadlock the survivors even
/// when every rank is blocked in the same rendezvous.
#[test]
fn crash_mid_collective_releases_blocked_peers() {
    let cluster = ClusterConfig::small_cluster(8).with_fault(FaultPlan::seeded(3).with_crash(5, 1));
    let err = try_run(&cluster, |comm| {
        // Rank 5's clock passes 1ns on its first charge; everyone else
        // enters the barrier and must be released by the poison.
        comm.charge(dhs::runtime::Work::Compares(1000));
        comm.barrier();
        comm.allreduce_sum(vec![comm.rank() as u64])
    })
    .expect_err("crash must fail the run");
    assert!(matches!(
        err.root_causes().next(),
        Some(RankError::Crashed { rank: 5, .. })
    ));
}

/// Faulty runs replay bit-for-bit: same seed, same makespan, same
/// retry/duplicate counters — end-to-end through the sort.
#[test]
fn faulty_sort_run_is_reproducible() {
    let p = 16;
    let plan = FaultPlan::seeded(0xDEED)
        .with_straggler(2, 4.0)
        .with_loss(LossSpec {
            rate: 0.15,
            timeout_ns: 30_000,
            max_retries: 16,
            duplicate_rate: 0.05,
            backoff_factor: 1.0,
        });
    let go = || {
        let cluster = ClusterConfig::supermuc_phase2(p).with_fault(plan.clone());
        let cfg = SortConfig::builder()
            .exchange(ExchangeStrategy::PairwiseMerge { overlap: false })
            .build()
            .expect("valid config");
        run_summarized(&cluster, move |comm| {
            let mut local = rank_local_keys(
                Distribution::paper_uniform(),
                Layout::Balanced,
                p * 1000,
                p,
                comm.rank(),
                11,
            );
            histogram_sort(comm, &mut local, &cfg);
        })
        .1
    };
    let a = go();
    let b = go();
    assert_eq!(a, b, "same plan seed must replay identically");
    assert!(
        a.p2p_retries > 0,
        "15% loss across pairwise rounds must retry"
    );
}

/// An inert (default) fault plan is byte-identical to no plan at all —
/// the zero-cost guarantee.
#[test]
fn default_fault_plan_is_inert() {
    let p = 16;
    let go = |fault: Option<FaultPlan>| {
        let mut cluster = ClusterConfig::supermuc_phase2(p);
        if let Some(f) = fault {
            cluster = cluster.with_fault(f);
        }
        run_summarized(&cluster, move |comm| {
            let mut local = rank_local_keys(
                Distribution::paper_uniform(),
                Layout::Balanced,
                p * 2000,
                p,
                comm.rank(),
                5,
            );
            let stats = histogram_sort(comm, &mut local, &SortConfig::default());
            assert_eq!(stats.outcome, SortOutcome::Exact);
            local
        })
    };
    let (data_a, sum_a) = go(None);
    let (data_b, sum_b) = go(Some(FaultPlan::default()));
    assert_eq!(sum_a, sum_b, "default plan must not perturb virtual time");
    assert_eq!(data_a, data_b);
    assert_eq!(sum_a.p2p_retries, 0);
    assert_eq!(sum_a.p2p_duplicates, 0);
}
