//! The simulator's promises: identical seeds give bit-identical
//! virtual times and traffic, and the cost model produces the
//! qualitative shapes the figures depend on.

use dhs::baselines::{hss_sort, HssConfig};
use dhs::core::{histogram_sort, SortConfig};
use dhs::runtime::{run, run_summarized, ClusterConfig, RunSummary};
use dhs::workloads::{rank_local_keys, Distribution, Layout};

fn one_sort_summary(p: usize, n_total: usize, seed: u64) -> RunSummary {
    let (_, summary) = run_summarized(&ClusterConfig::supermuc_phase2(p), move |comm| {
        let mut local = rank_local_keys(
            Distribution::paper_uniform(),
            Layout::Balanced,
            n_total,
            p,
            comm.rank(),
            seed,
        );
        histogram_sort(comm, &mut local, &SortConfig::default())
    });
    summary
}

#[test]
fn virtual_time_is_reproducible() {
    let a = one_sort_summary(32, 32 * 1000, 9);
    let b = one_sort_summary(32, 32 * 1000, 9);
    assert_eq!(a, b, "same seed must give identical virtual results");
    let c = one_sort_summary(32, 32 * 1000, 10);
    assert_ne!(
        a.makespan_ns, c.makespan_ns,
        "different data, different time"
    );
}

#[test]
fn strong_scaling_monotone_then_saturating() {
    // Fixed N: more ranks must reduce simulated time at small P; the
    // histogram collectives eventually flatten the curve (the Fig. 2
    // shape), so perfect scaling is NOT expected.
    let n_total = 1 << 18;
    let t16 = one_sort_summary(16, n_total, 4).makespan_ns;
    let t64 = one_sort_summary(64, n_total, 4).makespan_ns;
    assert!(t64 < t16, "t64 {t64} should beat t16 {t16}");
    let speedup = t16 as f64 / t64 as f64;
    assert!(
        speedup < 4.0,
        "speedup {speedup} cannot be ideal with collective overhead"
    );
    assert!(speedup > 1.3, "speedup {speedup} suspiciously poor");
}

#[test]
fn weak_scaling_exchange_dominates_histogram() {
    // Fig. 3b's claim: at a realistic volume per rank (the paper uses
    // 128 MB/rank; 8 MB/rank suffices here) the ALL-TO-ALL payload
    // dwarfs the ALLREDUCE histogramming overhead.
    let p = 32;
    let out = run(&ClusterConfig::supermuc_phase2(p), move |comm| {
        let mut local = rank_local_keys(
            Distribution::paper_uniform(),
            Layout::Balanced,
            p * (1 << 20),
            p,
            comm.rank(),
            3,
        );
        histogram_sort(comm, &mut local, &SortConfig::default())
    });
    let max_exchange = out.iter().map(|(s, _)| s.exchange_ns).max().unwrap_or(0);
    let max_hist = out.iter().map(|(s, _)| s.histogram_ns).max().unwrap_or(0);
    assert!(
        max_exchange > max_hist,
        "weak scaling: exchange {max_exchange} should dominate histogram {max_hist}"
    );
}

#[test]
fn intranode_fastpath_saves_time() {
    let p = 64;
    let n_total = p * (1 << 12);
    let go = |fastpath: bool| {
        let mut cfg = ClusterConfig::supermuc_phase2(p);
        cfg.cost.intranode_fastpath = fastpath;
        let (_, s) = run_summarized(&cfg, move |comm| {
            let mut local = rank_local_keys(
                Distribution::paper_uniform(),
                Layout::Balanced,
                n_total,
                p,
                comm.rank(),
                8,
            );
            histogram_sort(comm, &mut local, &SortConfig::default())
        });
        s.makespan_ns
    };
    assert!(go(true) < go(false), "shared-memory windows must help");
}

#[test]
fn histogram_iterations_do_not_grow_with_ranks() {
    // §V-A: "The number of processors does not impact the number of
    // iterations." — at fixed TOTAL problem size (the paper's strong
    // scaling setting). Iterations track the key resolution ~log₂(N),
    // not P; the max over more splitters adds at most a little.
    let n_total = 1 << 19;
    let iters = |p: usize| {
        let out = run(&ClusterConfig::supermuc_phase2(p), move |comm| {
            let mut local = rank_local_keys(
                Distribution::paper_uniform(),
                Layout::Balanced,
                n_total,
                p,
                comm.rank(),
                6,
            );
            histogram_sort(comm, &mut local, &SortConfig::default()).iterations
        });
        out.into_iter().map(|(i, _)| i).max().unwrap_or(0)
    };
    let i8 = iters(8);
    let i128 = iters(128);
    assert!(
        i128 <= i8 + 6,
        "iterations should be flat in P at fixed N: P=8 -> {i8}, P=128 -> {i128}"
    );
    // And always bounded by the key width (u64).
    assert!(i8 <= 65 && i128 <= 65);
}

#[test]
fn hss_traffic_exceeds_bisection_histogramming() {
    // HSS ships sampled keys every round; the paper's bisection ships
    // only counts. Compare total traffic at equal shape.
    let p = 32;
    let n_total = p * 4096;
    let traffic = |hss: bool| {
        let (_, s) = run_summarized(&ClusterConfig::supermuc_phase2(p), move |comm| {
            let mut local = rank_local_keys(
                Distribution::paper_uniform(),
                Layout::Balanced,
                n_total,
                p,
                comm.rank(),
                12,
            );
            if hss {
                hss_sort(comm, &mut local, &HssConfig::default());
            } else {
                histogram_sort(comm, &mut local, &SortConfig::default());
            }
        });
        s.inter_node_bytes + s.intra_node_bytes
    };
    // Both must at least ship the payload once.
    let payload = (n_total * 8) as u64;
    assert!(traffic(false) >= payload);
    assert!(traffic(true) >= payload);
}
