//! Shrink-and-recover: survivors of a mid-sort rank failure agree on
//! the survivor set, shrink onto a `p − f` communicator, roll back to
//! their retained checkpoint, and finish the sort
//! (`RecoveryPolicy::Shrink`). These tests pin the recovery driver's
//! correctness, determinism, and equivalence to a direct sort of the
//! survivors' inputs.

use dhs_core::{histogram_sort, histogram_sort_by, RecoveryPolicy, SortConfig, SortOutcome};
use dhs_runtime::{
    run, run_summarized, try_run, try_run_partial, ClusterConfig, FaultPlan, FaultPlanError,
    LossSpec, RankError,
};
use proptest::prelude::*;

fn keys_for(rank: usize, n: usize, modulus: u64) -> Vec<u64> {
    let mut x = (rank as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % modulus
        })
        .collect()
}

fn shrink_cfg(threads: usize) -> SortConfig {
    SortConfig::builder()
        .recovery(RecoveryPolicy::Shrink)
        .threads_per_rank(threads)
        .build()
        .expect("valid config")
}

/// A crash before the exchange commits: survivors must complete with
/// `SortOutcome::Recovered`, and the surviving output must be the
/// sorted union of the survivors' inputs.
#[test]
fn shrink_recovers_from_single_crash() {
    let p = 8;
    let n = 2000;
    let victim = 3;
    let cfg =
        ClusterConfig::small_cluster(p).with_fault(FaultPlan::seeded(1).with_crash(victim, 50_000));
    let sort_cfg = shrink_cfg(1);
    let out = try_run_partial(&cfg, move |comm| {
        let mut local = keys_for(comm.rank(), n, 1 << 20);
        let stats = histogram_sort(comm, &mut local, &sort_cfg);
        (local, stats)
    });

    assert!(out.ranks[victim].is_err(), "the victim itself must fail");
    let mut got = Vec::new();
    for (rank, res) in out.ranks.iter().enumerate() {
        if rank == victim {
            continue;
        }
        let (local, stats) = match res {
            Ok(((local, stats), _)) => (local, stats),
            Err(e) => panic!("survivor {rank} failed: {e}"),
        };
        match &stats.outcome {
            SortOutcome::Recovered {
                lost_ranks,
                restarts,
                recovery_ns,
            } => {
                assert_eq!(lost_ranks, &vec![victim]);
                assert!(*restarts >= 1);
                assert!(*recovery_ns > 0);
            }
            other => panic!("survivor {rank}: expected Recovered, got {other:?}"),
        }
        assert!(
            local.windows(2).all(|w| w[0] <= w[1]),
            "rank {rank} not locally sorted"
        );
        got.extend_from_slice(local);
    }
    let mut expect: Vec<u64> = (0..p)
        .filter(|&r| r != victim)
        .flat_map(|r| keys_for(r, n, 1 << 20))
        .collect();
    expect.sort_unstable();
    assert_eq!(got, expect, "survivor output must be their sorted union");
}

/// Crash deadlines spanning every phase of the sort — from the very
/// first charge through the tail of the pipeline. Whatever the timing,
/// every survivor must complete and their concatenated output must be
/// the sorted union of the completers' inputs. (A deadline past the
/// victim's completion never fires; a post-exchange deadline hits the
/// commit point and the survivors finish without a restart.)
#[test]
fn shrink_completes_across_crash_phase_grid() {
    let p = 8;
    let n = 2000;
    let victim = 5;
    for at_ns in [1, 10_000, 50_000, 200_000, 800_000, 3_000_000] {
        let cfg = ClusterConfig::small_cluster(p)
            .with_fault(FaultPlan::seeded(2).with_crash(victim, at_ns));
        let sort_cfg = shrink_cfg(1);
        let out = try_run_partial(&cfg, move |comm| {
            let mut local = keys_for(comm.rank(), n, u64::MAX);
            let stats = histogram_sort(comm, &mut local, &sort_cfg);
            (local, stats)
        });
        let completers: Vec<usize> = (0..p).filter(|&r| out.ranks[r].is_ok()).collect();
        assert!(
            completers.iter().filter(|&&r| r != victim).count() == p - 1,
            "at_ns={at_ns}: every survivor must complete"
        );
        let mut got = Vec::new();
        for &r in &completers {
            let ((local, stats), _) = out.ranks[r].as_ref().expect("completer");
            assert!(local.windows(2).all(|w| w[0] <= w[1]));
            if let SortOutcome::Recovered { lost_ranks, .. } = &stats.outcome {
                assert_eq!(lost_ranks, &vec![victim], "at_ns={at_ns}");
                assert!(out.ranks[victim].is_err(), "at_ns={at_ns}");
            }
            got.extend_from_slice(local);
        }
        let mut expect: Vec<u64> = completers
            .iter()
            .flat_map(|&r| keys_for(r, n, u64::MAX))
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect, "at_ns={at_ns}: completer output wrong");
    }
}

/// Two staggered crashes: the sort shrinks past both and the remaining
/// survivors still finish with the union of their inputs.
#[test]
fn shrink_survives_two_staggered_crashes() {
    let p = 8;
    let n = 1500;
    let cfg = ClusterConfig::small_cluster(p).with_fault(
        FaultPlan::seeded(3)
            .with_crash(2, 40_000)
            .with_crash(6, 50_000),
    );
    let sort_cfg = shrink_cfg(1);
    let out = try_run_partial(&cfg, move |comm| {
        let mut local = keys_for(comm.rank(), n, 1 << 30);
        let stats = histogram_sort(comm, &mut local, &sort_cfg);
        (local, stats)
    });
    let mut got = Vec::new();
    let mut lost_seen: Option<Vec<usize>> = None;
    for rank in (0..p).filter(|r| ![2, 6].contains(r)) {
        let ((local, stats), _) = out.ranks[rank]
            .as_ref()
            .unwrap_or_else(|e| panic!("survivor {rank} failed: {e}"));
        match &stats.outcome {
            SortOutcome::Recovered {
                lost_ranks,
                restarts,
                ..
            } => {
                let mut sorted_lost = lost_ranks.clone();
                sorted_lost.sort_unstable();
                assert_eq!(sorted_lost, vec![2, 6], "rank {rank}");
                assert!(*restarts >= 1);
                match &lost_seen {
                    Some(prev) => assert_eq!(prev, lost_ranks, "lost set must agree"),
                    None => lost_seen = Some(lost_ranks.clone()),
                }
            }
            other => panic!("survivor {rank}: expected Recovered, got {other:?}"),
        }
        got.extend_from_slice(local);
    }
    let mut expect: Vec<u64> = (0..p)
        .filter(|r| ![2, 6].contains(r))
        .flat_map(|r| keys_for(r, n, 1 << 30))
        .collect();
    expect.sort_unstable();
    assert_eq!(got, expect);
}

/// Recovery is deterministic under the virtual clock: the same seed
/// produces byte-identical survivor outputs *and* identical per-rank
/// virtual makespans, for any intra-rank thread budget.
#[test]
fn shrink_recovery_is_deterministic() {
    let p = 8;
    let n = 2000;
    let victim = 4;
    let go = |threads: usize| {
        let cfg = ClusterConfig::small_cluster(p)
            .with_fault(FaultPlan::seeded(9).with_crash(victim, 120_000));
        let sort_cfg = shrink_cfg(threads);
        let out = try_run_partial(&cfg, move |comm| {
            let mut local = keys_for(comm.rank(), n, 1 << 22);
            let stats = histogram_sort(comm, &mut local, &sort_cfg);
            (local, stats)
        });
        out.ranks
            .into_iter()
            .map(|res| {
                res.ok()
                    .map(|((local, stats), rep)| (local, stats, rep.clock_ns))
            })
            .collect::<Vec<_>>()
    };
    let a = go(1);
    let b = go(1);
    assert_eq!(a, b, "same seed must replay bit-for-bit");
    let c = go(4);
    for (rank, (x, y)) in a.iter().zip(&c).enumerate() {
        match (x, y) {
            (Some((la, sa, ka)), Some((lc, sc, kc))) => {
                assert_eq!(la, lc, "rank {rank}: output must not depend on threads");
                assert_eq!(sa, sc, "rank {rank}: stats must not depend on threads");
                assert_eq!(ka, kc, "rank {rank}: clock must not depend on threads");
            }
            (None, None) => {}
            _ => panic!("rank {rank}: completion must not depend on threads"),
        }
    }
}

/// The record-carrying entry point recovers the same way: survivors
/// shrink, retain every surviving payload exactly once, and end
/// globally ordered by key.
#[test]
fn shrink_recovers_record_sort() {
    let p = 6;
    let n = 800;
    let victim = 1;
    let cfg =
        ClusterConfig::small_cluster(p).with_fault(FaultPlan::seeded(5).with_crash(victim, 30_000));
    let sort_cfg = shrink_cfg(1);
    let out = try_run_partial(&cfg, move |comm| {
        let mut records: Vec<(u64, u32, u32)> = keys_for(comm.rank(), n, 1000)
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, comm.rank() as u32, i as u32))
            .collect();
        let stats = histogram_sort_by(comm, &mut records, |r| r.0, &sort_cfg);
        (records, stats)
    });
    let mut all: Vec<(u64, u32, u32)> = Vec::new();
    for rank in (0..p).filter(|&r| r != victim) {
        let ((records, stats), _) = out.ranks[rank]
            .as_ref()
            .unwrap_or_else(|e| panic!("survivor {rank} failed: {e}"));
        assert!(
            stats.outcome.is_recovered(),
            "survivor {rank}: expected Recovered, got {:?}",
            stats.outcome
        );
        assert!(records.windows(2).all(|w| w[0].0 <= w[1].0));
        all.extend_from_slice(records);
    }
    assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
    let mut origins: Vec<(u32, u32)> = all.iter().map(|r| (r.1, r.2)).collect();
    origins.sort_unstable();
    origins.dedup();
    assert_eq!(
        origins.len(),
        (p - 1) * n,
        "payloads must survive exactly once"
    );
    for &(k, r, i) in &all {
        assert_ne!(r as usize, victim, "the victim's data is lost with it");
        assert_eq!(keys_for(r as usize, n, 1000)[i as usize], k);
    }
}

/// A bounded retransmission budget turns an unreachable peer into a
/// typed `RetriesExhausted` failure instead of an unbounded retry
/// loop, and the failure is the run's root cause under Abort.
#[test]
fn retries_exhausted_is_typed_root_cause() {
    let p = 4;
    let cluster =
        ClusterConfig::small_cluster(p).with_fault(FaultPlan::seeded(11).with_loss(LossSpec {
            rate: 0.9,
            timeout_ns: 500,
            max_retries: 2,
            duplicate_rate: 0.0,
            backoff_factor: 1.0,
        }));
    let cfg = SortConfig::builder()
        .exchange(dhs_core::ExchangeStrategy::PairwiseMerge { overlap: false })
        .build()
        .expect("valid config");
    let err = try_run(&cluster, move |comm| {
        let mut local = keys_for(comm.rank(), 500, 1 << 16);
        histogram_sort(comm, &mut local, &cfg);
    })
    .expect_err("90% loss with 2 retries must exhaust some link");
    let exhausted = err
        .root_causes()
        .any(|e| matches!(e, RankError::RetriesExhausted { attempts: 2, .. }));
    assert!(
        exhausted,
        "expected a RetriesExhausted root cause, got {:?}",
        err.root_causes().collect::<Vec<_>>()
    );
}

/// Exponential backoff must lengthen the modelled retransmission
/// penalty: the same lossy run takes strictly longer in virtual time
/// with `backoff_factor` 2 than with the flat default.
#[test]
fn loss_backoff_factor_slows_retries() {
    let p = 8;
    let makespan = |backoff_factor: f64| {
        let cluster =
            ClusterConfig::small_cluster(p).with_fault(FaultPlan::seeded(13).with_loss(LossSpec {
                rate: 0.3,
                timeout_ns: 2_000,
                max_retries: 20,
                duplicate_rate: 0.0,
                backoff_factor,
            }));
        let cfg = SortConfig::builder()
            .exchange(dhs_core::ExchangeStrategy::PairwiseMerge { overlap: false })
            .build()
            .expect("valid config");
        run_summarized(&cluster, move |comm| {
            let mut local = keys_for(comm.rank(), 1000, 1 << 16);
            histogram_sort(comm, &mut local, &cfg);
        })
        .1
        .makespan_ns
    };
    assert!(
        makespan(2.0) > makespan(1.0),
        "doubling backoff must cost virtual time"
    );
}

/// `FaultPlan::validate` rejects malformed backoff factors with the
/// typed error, and accepts the sane range.
#[test]
fn loss_backoff_validation() {
    let spec = |backoff_factor: f64| FaultPlan {
        loss: Some(LossSpec {
            rate: 0.1,
            timeout_ns: 100,
            max_retries: 4,
            duplicate_rate: 0.0,
            backoff_factor,
        }),
        ..FaultPlan::default()
    };
    for bad in [0.0, 0.5, -1.0, f64::NAN, f64::INFINITY] {
        assert!(
            matches!(
                spec(bad).validate(4),
                Err(FaultPlanError::BadLossBackoff { .. })
            ),
            "backoff {bad} must be rejected"
        );
    }
    for good in [1.0, 1.5, 4.0] {
        assert!(spec(good).validate(4).is_ok(), "backoff {good} is valid");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Shrink-equivalence (ε = 0, perfect partitioning): the recovered
    /// survivor output is byte-identical to directly sorting the
    /// survivors' retained inputs on a fresh `p − f` communicator —
    /// across crash timing, stragglers on/off, and thread budgets.
    /// (With ε = 0 the realized boundaries are exact, so the output
    /// partition is independent of *which* splitter keys were accepted
    /// warm versus cold.)
    #[test]
    fn recovered_output_matches_direct_survivor_sort(
        crash_ns in 1u64..600_000,
        n in 400usize..1600,
        straggle in any::<bool>(),
        four_threads in any::<bool>(),
        modulus_pow in 3u32..40,
    ) {
        let p = 6;
        let victim = 2;
        let threads = if four_threads { 4 } else { 1 };
        let modulus = 1u64 << modulus_pow;

        let mut plan = FaultPlan::seeded(17).with_crash(victim, crash_ns);
        if straggle {
            plan = plan.with_straggler(4, 3.0);
        }
        let cluster = ClusterConfig::small_cluster(p).with_fault(plan);
        let sort_cfg = shrink_cfg(threads);
        let recovered = try_run_partial(&cluster, move |comm| {
            let mut local = keys_for(comm.rank(), n, modulus);
            histogram_sort(comm, &mut local, &sort_cfg);
            local
        });

        if recovered.ranks[victim].is_err() {
            // The crash fired: compare survivors against a direct
            // fault-free sort of exactly their inputs on p − 1 ranks.
            let survivors: Vec<usize> = (0..p).filter(|&r| r != victim).collect();
            let sv = survivors.clone();
            let direct_cfg = shrink_cfg(threads);
            let direct = run(&ClusterConfig::small_cluster(p - 1), move |comm| {
                let mut local = keys_for(sv[comm.rank()], n, modulus);
                histogram_sort(comm, &mut local, &direct_cfg);
                local
            });
            for (i, &r) in survivors.iter().enumerate() {
                let (got, _) = recovered.ranks[r].as_ref().expect("survivor completed");
                prop_assert_eq!(
                    got, &direct[i].0,
                    "survivor {} (new rank {}) output differs from direct sort", r, i
                );
            }
        } else {
            // Deadline fell past the victim's completion: nothing
            // crashed, so the run must equal the fault-free full sort.
            let direct_cfg = shrink_cfg(threads);
            let direct = run(&ClusterConfig::small_cluster(p), move |comm| {
                let mut local = keys_for(comm.rank(), n, modulus);
                histogram_sort(comm, &mut local, &direct_cfg);
                local
            });
            for (r, d) in direct.iter().enumerate().take(p) {
                let (got, _) = recovered.ranks[r].as_ref().expect("rank completed");
                prop_assert_eq!(got, &d.0, "rank {} output differs", r);
            }
        }
    }
}
