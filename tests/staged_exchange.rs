//! The staged k-way exchange's end-to-end contract: routing keys
//! through `⌈log_k P⌉` store-and-forward stages over split
//! sub-communicators must be *invisible* in the sorted output — every
//! schedule delivers byte-identical data — while remaining fully
//! deterministic on the virtual clock (same seed → same per-rank
//! makespans, for any intra-rank thread budget, with faults on or
//! off). Plus the one interplay the schedule forbids: shrink-and-
//! recover's crash rendezvous cannot see across sub-communicator
//! boundaries, so `RecoveryPolicy::Shrink` + `StagedKWay` is a typed
//! configuration error, never a runtime deadlock.

use dhs_core::{histogram_sort, AllToAllAlgo, InvalidSortConfig, RecoveryPolicy, SortConfig};
use dhs_runtime::{run, try_run_partial, ClusterConfig, FaultPlan};
use proptest::prelude::*;

fn keys_for(rank: usize, n: usize, modulus: u64) -> Vec<u64> {
    let mut x = (rank as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % modulus
        })
        .collect()
}

fn cfg_with(algo: AllToAllAlgo, threads: usize) -> SortConfig {
    SortConfig::builder()
        .exchange_algo(algo)
        .threads_per_rank(threads)
        .build()
        .expect("valid config")
}

/// One rank's view of a finished sort: its output block and its
/// virtual clock at the end of the run.
type RankOutcome = (Vec<u64>, u64);

fn sorted_run(
    p: usize,
    n: usize,
    modulus: u64,
    algo: AllToAllAlgo,
    threads: usize,
    faults: bool,
    seed: u64,
) -> Vec<RankOutcome> {
    let mut cluster = ClusterConfig::small_cluster(p);
    if faults {
        let slow = (seed % p as u64) as usize;
        cluster = cluster
            .with_fault(FaultPlan::seeded(seed).with_straggler(slow, 1.5 + (seed % 5) as f64));
    }
    let cfg = cfg_with(algo, threads);
    run(&cluster, move |comm| {
        let mut local = keys_for(comm.rank(), n, modulus);
        histogram_sort(comm, &mut local, &cfg);
        (local, comm.now_ns())
    })
    .into_iter()
    .map(|(v, _)| v)
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// For every fan-out, rank count, duplicate density, fault plan,
    /// and thread budget: (1) the staged sort's output is byte-
    /// identical to the one-factor sort's, and (2) the staged run is
    /// deterministic — replaying it reproduces both the data and every
    /// rank's virtual makespan exactly, and a four-thread budget
    /// changes neither.
    #[test]
    fn staged_sort_matches_one_factor_and_replays_exactly(
        k_idx in 0usize..3,
        p in 4usize..17,
        n in 100usize..700,
        modulus_pow in 2u32..40,
        faults: bool,
        seed in 0u64..10_000,
    ) {
        let k = [2usize, 4, 8][k_idx];
        let modulus = 1u64 << modulus_pow;
        let staged = AllToAllAlgo::StagedKWay { k };

        let base = sorted_run(p, n, modulus, AllToAllAlgo::OneFactor, 1, faults, seed);
        let s1 = sorted_run(p, n, modulus, staged, 1, faults, seed);
        let s1_replay = sorted_run(p, n, modulus, staged, 1, faults, seed);
        let s4 = sorted_run(p, n, modulus, staged, 4, faults, seed);

        for (rank, (b, s)) in base.iter().zip(&s1).enumerate() {
            prop_assert_eq!(
                &b.0, &s.0,
                "k={} rank {}: staged output must match one-factor", k, rank
            );
        }
        prop_assert_eq!(&s1, &s1_replay, "k={}: same seed must replay bit-for-bit", k);
        prop_assert_eq!(
            &s1, &s4,
            "k={}: output and makespans must not depend on the thread budget", k
        );
    }
}

/// All four exchange schedules produce byte-identical sorted blocks on
/// every rank — the schedule moves bytes on different paths, never to
/// different places.
#[test]
fn all_four_schedules_sort_identically() {
    let p = 16;
    let n = 1200;
    let base = sorted_run(p, n, 1 << 24, AllToAllAlgo::OneFactor, 1, false, 0);
    for algo in [
        AllToAllAlgo::Bruck,
        AllToAllAlgo::HierarchicalLeaders,
        AllToAllAlgo::StagedKWay { k: 4 },
    ] {
        let other = sorted_run(p, n, 1 << 24, algo, 1, false, 0);
        for (rank, (b, o)) in base.iter().zip(&other).enumerate() {
            assert_eq!(b.0, o.0, "{algo:?} rank {rank}: output diverged");
        }
    }
}

/// `Shrink` + `StagedKWay` is rejected when the configuration is
/// built — the crash rendezvous of the recovery driver spans the whole
/// communicator, which a mid-exchange split makes impossible — and a
/// degenerate fan-out is rejected on its own account.
#[test]
fn shrink_with_staged_exchange_is_a_typed_config_error() {
    let err = SortConfig::builder()
        .recovery(RecoveryPolicy::Shrink)
        .exchange_algo(AllToAllAlgo::StagedKWay { k: 4 })
        .build()
        .expect_err("shrink + staged must not build");
    assert!(
        matches!(err, InvalidSortConfig::ShrinkNeedsSingleStageExchange),
        "expected ShrinkNeedsSingleStageExchange, got {err:?}"
    );

    for k in [0usize, 1] {
        let err = SortConfig::builder()
            .exchange_algo(AllToAllAlgo::StagedKWay { k })
            .build()
            .expect_err("fan-out below 2 must not build");
        assert!(
            matches!(err, InvalidSortConfig::BadExchangeFanout(got) if got == k),
            "expected BadExchangeFanout({k}), got {err:?}"
        );
    }
}

/// The combination the typed error protects: shrink recovery with the
/// (single-stage) one-factor exchange still completes through a mid-
/// sort crash — survivors recover, nothing deadlocks — so rejecting
/// `StagedKWay` under `Shrink` costs no fault-tolerance coverage.
#[test]
fn shrink_with_single_stage_exchange_still_recovers() {
    let p = 8;
    let n = 1500;
    let victim = 3;
    let cluster =
        ClusterConfig::small_cluster(p).with_fault(FaultPlan::seeded(7).with_crash(victim, 60_000));
    let cfg = SortConfig::builder()
        .recovery(RecoveryPolicy::Shrink)
        .exchange_algo(AllToAllAlgo::OneFactor)
        .build()
        .expect("shrink + one-factor is valid");
    let out = try_run_partial(&cluster, move |comm| {
        let mut local = keys_for(comm.rank(), n, 1 << 20);
        let stats = histogram_sort(comm, &mut local, &cfg);
        (local, stats.outcome.is_recovered())
    });
    assert!(out.ranks[victim].is_err(), "the victim itself must fail");
    let mut got = Vec::new();
    for rank in (0..p).filter(|&r| r != victim) {
        let ((local, recovered), _) = out.ranks[rank]
            .as_ref()
            .unwrap_or_else(|e| panic!("survivor {rank} failed: {e}"));
        assert!(recovered, "survivor {rank} must report Recovered");
        got.extend_from_slice(local);
    }
    let mut expect: Vec<u64> = (0..p)
        .filter(|&r| r != victim)
        .flat_map(|r| keys_for(r, n, 1 << 20))
        .collect();
    expect.sort_unstable();
    assert_eq!(got, expect, "survivor output must be their sorted union");
}
