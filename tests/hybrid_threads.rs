//! The hybrid rank×thread determinism contract: for every
//! `threads_per_rank`, the sort produces byte-identical output AND
//! byte-identical virtual time on every rank. Host threads spent
//! inside a rank are invisible to the cost model — charges are pure
//! functions of data sizes — so budgets 1, 2 and 4 must replay the
//! exact same simulation, with or without injected faults.

use dhs::core::{histogram_sort, histogram_sort_by, SortConfig};
use dhs::runtime::{run, ClusterConfig, FaultPlan, LinkClass, LinkFault, RankReport};
use dhs::workloads::{rank_local_keys, Distribution, Layout};
use proptest::prelude::*;

/// One full sort: per-rank `(sorted data, RankReport)` — the report
/// carries the virtual completion clock, all message/byte counters and
/// the depth-0 phase totals, so equality is the whole simulation.
fn sort_with_threads(
    cluster: &ClusterConfig,
    p: usize,
    n_per: usize,
    seed: u64,
    threads: usize,
) -> Vec<(Vec<u64>, RankReport)> {
    let cfg = SortConfig::builder()
        .threads_per_rank(threads)
        .build()
        .expect("valid config");
    run(cluster, move |comm| {
        let mut local = rank_local_keys(
            Distribution::paper_uniform(),
            Layout::Balanced,
            p * n_per,
            p,
            comm.rank(),
            seed,
        );
        histogram_sort(comm, &mut local, &cfg);
        local
    })
}

/// [`sort_with_threads`] with a multi-probe splitter search: the
/// fatter histogram rounds dispatch per-splitter probe batches to the
/// thread pool, so the m > 1 path needs its own budget-invariance
/// coverage (output AND virtual makespan, via the `RankReport`s).
fn sort_with_threads_probes(
    cluster: &ClusterConfig,
    p: usize,
    n_per: usize,
    seed: u64,
    threads: usize,
    probes: usize,
) -> Vec<(Vec<u64>, RankReport)> {
    let cfg = SortConfig::builder()
        .threads_per_rank(threads)
        .probes_per_round(probes)
        .build()
        .expect("valid config");
    run(cluster, move |comm| {
        let mut local = rank_local_keys(
            Distribution::paper_uniform(),
            Layout::Balanced,
            p * n_per,
            p,
            comm.rank(),
            seed,
        );
        histogram_sort(comm, &mut local, &cfg);
        local
    })
}

/// Record sort: `(key, provenance)` pairs ordered by key only, so the
/// provenance tags witness the *stable* permutation byte-for-byte.
fn sort_by_with_threads(
    cluster: &ClusterConfig,
    p: usize,
    n_per: usize,
    seed: u64,
    threads: usize,
) -> Vec<(Vec<(u64, u32)>, RankReport)> {
    let cfg = SortConfig::builder()
        .threads_per_rank(threads)
        .build()
        .expect("valid config");
    run(cluster, move |comm| {
        let keys = rank_local_keys(
            Distribution::paper_uniform(),
            Layout::Balanced,
            p * n_per,
            p,
            comm.rank(),
            seed,
        );
        // Key space collapsed mod 97: plenty of global duplicates, so
        // only a genuinely stable path reproduces the serial order.
        let mut records: Vec<(u64, u32)> = keys
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k % 97, (comm.rank() * 1_000_000 + i) as u32))
            .collect();
        histogram_sort_by(comm, &mut records, |r| r.0, &cfg);
        records
    })
}

fn faulty(p: usize, seed: u64) -> ClusterConfig {
    ClusterConfig::small_cluster(p).with_fault(
        FaultPlan::seeded(seed ^ 0x7ead)
            .with_straggler(seed as usize % p, 2.5)
            .with_link_fault(LinkFault {
                class: Some(LinkClass::IntraNode),
                extra_alpha_ns: 3_000.0,
                beta_factor: 1.8,
                from_ns: 0,
                until_ns: u64::MAX,
            }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// `histogram_sort`: output and per-rank virtual clocks identical
    /// for budgets 1, 2 and 4, on clean and faulty clusters alike.
    #[test]
    fn keys_identical_across_thread_budgets(
        p in 2usize..7,
        n_per in 50usize..400,
        seed in 0u64..100_000,
        with_faults in any::<bool>(),
    ) {
        let cluster = if with_faults {
            faulty(p, seed)
        } else {
            ClusterConfig::small_cluster(p)
        };
        let serial = sort_with_threads(&cluster, p, n_per, seed, 1);
        for threads in [2usize, 4] {
            let hybrid = sort_with_threads(&cluster, p, n_per, seed, threads);
            prop_assert_eq!(&serial, &hybrid, "threads={}", threads);
        }
    }

    /// Multi-probe splitter rounds (`probes_per_round = 7`): the
    /// threaded probe-counting kernel must keep sorted output and the
    /// per-rank virtual clocks byte-identical across budgets, and the
    /// simulation itself must match the single-probe one (same m ⇒
    /// same collective schedule regardless of threads; any m ⇒ same
    /// sorted output).
    #[test]
    fn multi_probe_identical_across_thread_budgets(
        p in 2usize..7,
        n_per in 50usize..400,
        seed in 0u64..100_000,
        with_faults in any::<bool>(),
    ) {
        let cluster = if with_faults {
            faulty(p, seed)
        } else {
            ClusterConfig::small_cluster(p)
        };
        let serial = sort_with_threads_probes(&cluster, p, n_per, seed, 1, 7);
        for threads in [2usize, 4] {
            let hybrid = sort_with_threads_probes(&cluster, p, n_per, seed, threads, 7);
            prop_assert_eq!(&serial, &hybrid, "threads={}", threads);
        }
        // Same sorted keys as the classic single-probe search (the
        // virtual clocks legitimately differ: fewer, fatter rounds).
        let classic = sort_with_threads(&cluster, p, n_per, seed, 1);
        for ((keys_m, _), (keys_1, _)) in serial.iter().zip(&classic) {
            prop_assert_eq!(keys_m, keys_1);
        }
    }

    /// `histogram_sort_by` (stable record path): the duplicate-heavy
    /// key space makes any stability violation visible in the tags.
    #[test]
    fn records_identical_across_thread_budgets(
        p in 2usize..6,
        n_per in 50usize..300,
        seed in 0u64..100_000,
        with_faults in any::<bool>(),
    ) {
        let cluster = if with_faults {
            faulty(p, seed)
        } else {
            ClusterConfig::small_cluster(p)
        };
        let serial = sort_by_with_threads(&cluster, p, n_per, seed, 1);
        for threads in [2usize, 4] {
            let hybrid = sort_by_with_threads(&cluster, p, n_per, seed, threads);
            prop_assert_eq!(&serial, &hybrid, "threads={}", threads);
        }
    }
}

/// Above the shm kernels' serial-fallback grain the parallel code paths
/// actually fork; the contract must hold there too, not just in the
/// small-n regime the proptests cover.
#[test]
fn large_local_blocks_identical_across_budgets() {
    let p = 4;
    let n_per = 40_000; // > SORT_GRAIN per rank: kernels really fork
    let cluster = ClusterConfig::supermuc_phase2(p);
    let serial = sort_with_threads(&cluster, p, n_per, 42, 1);
    for threads in [2usize, 4] {
        let hybrid = sort_with_threads(&cluster, p, n_per, 42, threads);
        assert_eq!(serial, hybrid, "threads={threads}");
    }
    let serial_by = sort_by_with_threads(&cluster, p, n_per, 42, 1);
    for threads in [2usize, 4] {
        let hybrid = sort_by_with_threads(&cluster, p, n_per, 42, threads);
        assert_eq!(serial_by, hybrid, "threads={threads}");
    }
    let serial_m = sort_with_threads_probes(&cluster, p, n_per, 42, 1, 7);
    for threads in [2usize, 4] {
        let hybrid = sort_with_threads_probes(&cluster, p, n_per, 42, threads, 7);
        assert_eq!(serial_m, hybrid, "threads={threads} probes=7");
    }
}
