//! Cross-crate integration: the paper's output invariants, checked on
//! randomized shapes with property-based testing.
//!
//! For every configuration the sorted output must be (a) a permutation
//! of the input multiset, (b) locally sorted, (c) globally ordered by
//! rank, and (d) sized according to the partitioning policy.

use std::collections::HashMap;

use dhs::core::{histogram_sort, MergeAlgo, Partitioning, SortConfig};
use dhs::runtime::{run, ClusterConfig};
use dhs::workloads::{rank_local_keys, Distribution, Layout};
use proptest::prelude::*;

/// Run the sort and verify all four invariants. Returns per-rank sizes.
fn sort_and_verify(
    p: usize,
    n_total: usize,
    dist: Distribution,
    layout: Layout,
    cfg: &SortConfig,
    seed: u64,
) -> Vec<usize> {
    let cfg2 = cfg.clone();
    let out = run(&ClusterConfig::small_cluster(p), move |comm| {
        let mut local = rank_local_keys(dist, layout, n_total, p, comm.rank(), seed);
        let before = local.clone();
        histogram_sort(comm, &mut local, &cfg2);
        (before, local)
    });

    // (a) permutation of the input multiset.
    let mut in_counts: HashMap<u64, i64> = HashMap::new();
    let mut out_counts: HashMap<u64, i64> = HashMap::new();
    for ((before, after), _) in &out {
        for &k in before {
            *in_counts.entry(k).or_default() += 1;
        }
        for &k in after {
            *out_counts.entry(k).or_default() += 1;
        }
    }
    assert_eq!(
        in_counts, out_counts,
        "output must be a permutation of the input"
    );

    // (b) + (c) local sortedness and global rank ordering.
    let mut prev: Option<u64> = None;
    for ((_, after), _) in &out {
        for &k in after {
            if let Some(p) = prev {
                assert!(p <= k, "global order violated: {p} > {k}");
            }
            prev = Some(k);
        }
    }

    // (d) partition sizes.
    let sizes: Vec<usize> = out.iter().map(|((_, a), _)| a.len()).collect();
    match cfg.partitioning {
        Partitioning::Perfect if cfg.epsilon == 0.0 => {
            let expect = layout.sizes(n_total, p);
            assert_eq!(
                sizes, expect,
                "perfect partitioning must restore capacities"
            );
        }
        Partitioning::Balanced if cfg.epsilon == 0.0 => {
            let max = sizes.iter().max().copied().unwrap_or(0);
            let min = sizes.iter().min().copied().unwrap_or(0);
            assert!(max - min <= 1, "balanced partitioning: {sizes:?}");
        }
        Partitioning::Perfect => {
            // Each boundary may drift by at most the Definition 1 slack
            // from the capacity prefix, so each rank's size stays
            // within its own capacity ± 2·slack.
            let slack = ((n_total as f64) * cfg.epsilon / (2.0 * p as f64)).floor() as usize;
            let caps = layout.sizes(n_total, p);
            for (rank, (&got, &cap)) in sizes.iter().zip(&caps).enumerate() {
                assert!(
                    got.abs_diff(cap) <= 2 * slack,
                    "rank {rank}: size {got} vs capacity {cap} exceeds 2*slack {slack}"
                );
            }
        }
        Partitioning::Balanced => {
            let cap = ((n_total as f64) * (1.0 + cfg.epsilon) / p as f64).ceil() as usize + 1;
            assert!(
                sizes.iter().all(|&s| s <= cap),
                "epsilon bound violated: {sizes:?}"
            );
        }
    }
    sizes
}

fn arb_distribution() -> impl Strategy<Value = Distribution> {
    prop_oneof![
        Just(Distribution::paper_uniform()),
        Just(Distribution::Uniform {
            lo: 0,
            hi: u64::MAX
        }),
        Just(Distribution::Normal {
            mean: 0.0,
            std_dev: 1.0
        }),
        Just(Distribution::Zipf { items: 64, s: 1.2 }),
        Just(Distribution::NearlySorted {
            perturb_permille: 20
        }),
        Just(Distribution::FewDistinct { k: 3 }),
        Just(Distribution::AllEqual { value: 42 }),
    ]
}

fn arb_layout() -> impl Strategy<Value = Layout> {
    prop_oneof![
        Just(Layout::Balanced),
        Just(Layout::SparseFront {
            empty_permille: 400
        }),
        Just(Layout::Ramp { ratio: 6 }),
        (0usize..4).prop_map(|h| Layout::SingleRank { holder: h }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn histogram_sort_invariants_hold(
        p in 2usize..9,
        n_total in 0usize..4000,
        dist in arb_distribution(),
        layout in arb_layout(),
        seed in 0u64..1_000_000,
        eps_pm in 0u32..3,
    ) {
        // SingleRank holder index must be valid for this p.
        let layout = match layout {
            Layout::SingleRank { holder } => Layout::SingleRank { holder: holder % p },
            other => other,
        };
        let cfg = SortConfig::builder()
            .epsilon([0.0, 0.01, 0.1][eps_pm as usize])
            .build()
            .expect("valid config");
        sort_and_verify(p, n_total, dist, layout, &cfg, seed);
    }

    #[test]
    fn balanced_partitioning_invariants_hold(
        p in 2usize..9,
        n_total in 0usize..3000,
        dist in arb_distribution(),
        seed in 0u64..1_000_000,
    ) {
        let cfg = SortConfig::builder()
            .partitioning(Partitioning::Balanced)
            .build()
            .expect("valid config");
        let sizes = sort_and_verify(p, n_total, dist, Layout::Balanced, &cfg, seed);
        prop_assert_eq!(sizes.iter().sum::<usize>(), n_total);
    }

    #[test]
    fn unique_transform_changes_nothing_observable(
        p in 2usize..7,
        n_total in 1usize..2000,
        seed in 0u64..1_000_000,
    ) {
        // Heavy duplicates: the transform's motivating case.
        let dist = Distribution::FewDistinct { k: 4 };
        let plain = SortConfig::default();
        let unique = SortConfig::builder()
            .unique_transform(true)
            .build()
            .expect("valid config");
        let a = sort_and_verify(p, n_total, dist, Layout::Balanced, &plain, seed);
        let b = sort_and_verify(p, n_total, dist, Layout::Balanced, &unique, seed);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn two_level_sort_invariants_hold(
        p in 4usize..17,
        n_total in 0usize..3000,
        groups in 0usize..5,
        dist in arb_distribution(),
        seed in 0u64..1_000_000,
    ) {
        let out = dhs::runtime::run(
            &dhs::runtime::ClusterConfig::small_cluster(p),
            move |comm| {
                let mut local = rank_local_keys(dist, Layout::Balanced, n_total, p, comm.rank(), seed);
                let before = local.clone();
                dhs::core::histogram_sort_two_level(
                    comm, &mut local, &SortConfig::default(), groups);
                (before, local)
            },
        );
        let mut input: Vec<u64> = out.iter().flat_map(|((b, _), _)| b.clone()).collect();
        let output: Vec<u64> = out.iter().flat_map(|((_, a), _)| a.clone()).collect();
        input.sort_unstable();
        prop_assert!(output.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(&input, &{ let mut o = output.clone(); o.sort_unstable(); o });
        for ((before, after), _) in &out {
            prop_assert_eq!(before.len(), after.len(), "perfect partitioning");
        }
    }

    #[test]
    fn exchange_strategies_agree(
        p in 2usize..8,
        n_total in 0usize..2000,
        dist in arb_distribution(),
        seed in 0u64..1_000_000,
        overlap: bool,
    ) {
        let flat = SortConfig::default();
        let pairwise = SortConfig::builder()
            .exchange(dhs::core::ExchangeStrategy::PairwiseMerge { overlap })
            .build()
            .expect("valid config");
        let a = sort_and_verify(p, n_total, dist, Layout::Balanced, &flat, seed);
        let b = sort_and_verify(p, n_total, dist, Layout::Balanced, &pairwise, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn radix_local_sort_agrees(
        p in 2usize..8,
        n_total in 0usize..2000,
        dist in arb_distribution(),
        seed in 0u64..1_000_000,
    ) {
        let radix = SortConfig::builder()
            .local_sort(dhs::core::LocalSort::Radix)
            .build()
            .expect("valid config");
        let a = sort_and_verify(p, n_total, dist, Layout::Balanced, &SortConfig::default(), seed);
        let b = sort_and_verify(p, n_total, dist, Layout::Balanced, &radix, seed);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn all_merge_engines_integrate() {
    for merge in MergeAlgo::ALL {
        let cfg = SortConfig::builder()
            .merge(merge)
            .build()
            .expect("valid config");
        sort_and_verify(
            6,
            3000,
            Distribution::paper_uniform(),
            Layout::Balanced,
            &cfg,
            5,
        );
    }
}

#[test]
fn large_rank_count_smoke() {
    // 64 ranks on the Table I topology, duplicates and sparseness.
    let cfg = SortConfig::default();
    sort_and_verify(
        64,
        64 * 500,
        Distribution::Zipf {
            items: 1000,
            s: 1.1,
        },
        Layout::SparseFront {
            empty_permille: 250,
        },
        &cfg,
        11,
    );
}
