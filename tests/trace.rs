//! Trace-layer guarantees: traced runs export valid, deterministic
//! Chrome traces whose phase accounting exactly covers each rank's
//! virtual makespan, and tracing is observationally free — a traced
//! run and an untraced run of the same sort are bit-identical in
//! makespan and counters.

use dhs::prelude::*;
use dhs::runtime::validate_chrome_trace;
use proptest::prelude::*;

fn traced_sort(p: usize, n_per: usize, seed: u64, trace: TraceConfig) -> TracedRun<usize> {
    let cluster = ClusterConfig::supermuc_phase2(p).with_trace(trace);
    let n_total = p * n_per;
    run_traced(&cluster, move |comm| {
        let mut local = rank_local_keys(
            Distribution::paper_uniform(),
            Layout::Balanced,
            n_total,
            p,
            comm.rank(),
            seed,
        );
        histogram_sort(comm, &mut local, &SortConfig::default());
        local.len()
    })
}

#[test]
fn traced_sort_exports_valid_chrome_trace() {
    let traced = traced_sort(4, 2000, 7, TraceConfig::On);
    assert!(!traced.trace.is_empty(), "tracing on must record spans");

    let json = traced.trace.to_chrome_json();
    let check = validate_chrome_trace(&json).expect("exported trace must validate");
    assert_eq!(check.ranks, 4);
    assert!(check.complete_events > 0, "spans must be exported");

    // The sort's five phases appear, in pipeline order.
    let summary = traced.trace.phase_summary();
    let names: Vec<&str> = summary.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        names,
        ["local_sort", "prepare", "histogram", "exchange", "merge"],
        "depth-0 phases in first-appearance order"
    );
}

#[test]
fn traced_exports_are_deterministic() {
    let a = traced_sort(4, 1500, 11, TraceConfig::On);
    let b = traced_sort(4, 1500, 11, TraceConfig::On);
    assert_eq!(
        a.trace.to_chrome_json(),
        b.trace.to_chrome_json(),
        "identical runs must export byte-identical Chrome traces"
    );
    assert_eq!(a.trace.to_summary_json(), b.trace.to_summary_json());
}

#[test]
fn trace_off_records_nothing() {
    let traced = traced_sort(4, 1000, 3, TraceConfig::Off);
    assert!(
        traced.trace.is_empty(),
        "TraceConfig::Off must record nothing"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Every rank's depth-0 phase durations sum to exactly its virtual
    /// makespan: no virtual time escapes phase attribution.
    #[test]
    fn phase_totals_cover_rank_makespan(
        p in 2usize..9,
        n_per in 1usize..800,
        seed in 0u64..1000,
    ) {
        let traced = traced_sort(p, n_per, seed, TraceConfig::On);
        let summary = traced.trace.phase_summary();
        prop_assert_eq!(summary.per_rank_total_ns.len(), p);
        for (rank, (total, clock)) in summary
            .per_rank_total_ns
            .iter()
            .zip(&summary.rank_clock_ns)
            .enumerate()
        {
            prop_assert_eq!(total, clock, "rank {} phase totals vs clock", rank);
        }
        // The report-level phases agree with the trace.
        for ((_, report), rank_trace) in traced.ranks.iter().zip(&traced.trace.ranks) {
            let from_report: u64 = report.phases.iter().map(|(_, ns)| ns).sum();
            prop_assert_eq!(from_report, rank_trace.clock_ns);
        }
    }

    /// Tracing must not perturb the simulation: makespans and counters
    /// of a traced run equal those of an untraced run.
    #[test]
    fn tracing_is_observationally_free(
        p in 2usize..9,
        n_per in 1usize..800,
        seed in 0u64..1000,
    ) {
        let on = traced_sort(p, n_per, seed, TraceConfig::On);
        let off = traced_sort(p, n_per, seed, TraceConfig::Off);
        for ((n_on, r_on), (n_off, r_off)) in on.ranks.iter().zip(&off.ranks) {
            prop_assert_eq!(n_on, n_off);
            prop_assert_eq!(r_on.clock_ns, r_off.clock_ns);
            prop_assert_eq!(r_on.counters, r_off.counters);
        }
    }
}
