//! Engine equivalence: `RunnerEngine::Tasks` must be a pure host-side
//! optimization. For every cluster size, fault plan, recovery policy,
//! and hybrid thread budget, the task engine reproduces byte-identical
//! sorted output, per-rank virtual makespans, full counter reports,
//! and failure classifications vs the `Threads` determinism reference.
//! This is the contract that lets the large-p grids (which only the
//! task engine can run at practical cost) stand in for thread-engine
//! numbers.

use dhs_core::{histogram_sort, RecoveryPolicy, SortConfig};
use dhs_runtime::{try_run_partial, ClusterConfig, FaultPlan, LossSpec, RankReport, RunnerEngine};
use proptest::prelude::*;

fn keys_for(rank: usize, n: usize, modulus: u64) -> Vec<u64> {
    let mut x = (rank as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % modulus
        })
        .collect()
}

/// One full distributed sort under `engine`; per-rank outcome as
/// comparable plain values: sorted output + recovery flag + the whole
/// counter report on success, the failure rendering otherwise.
#[allow(clippy::type_complexity)]
fn sort_under(
    engine: RunnerEngine,
    p: usize,
    n_per: usize,
    threads: usize,
    fault: FaultPlan,
    recovery: RecoveryPolicy,
) -> Vec<Result<(Vec<u64>, bool, RankReport), String>> {
    let cfg = ClusterConfig::small_cluster(p)
        .with_fault(fault)
        .with_engine(engine);
    let sort_cfg = SortConfig::builder()
        .recovery(recovery)
        .threads_per_rank(threads)
        .build()
        .expect("valid config");
    let out = try_run_partial(&cfg, move |comm| {
        let mut local = keys_for(comm.rank(), n_per, 1 << 20);
        let stats = histogram_sort(comm, &mut local, &sort_cfg);
        (local, stats)
    });
    out.ranks
        .into_iter()
        .map(|r| {
            r.map(|((local, stats), report)| (local, stats.outcome.is_recovered(), report))
                .map_err(|e| e.to_string())
        })
        .collect()
}

/// Assert both engines agree rank by rank, with a labelled context.
fn assert_engines_agree(
    label: &str,
    p: usize,
    n_per: usize,
    threads: usize,
    fault: FaultPlan,
    recovery: RecoveryPolicy,
) {
    let reference = sort_under(
        RunnerEngine::Threads,
        p,
        n_per,
        threads,
        fault.clone(),
        recovery,
    );
    for engine in [
        RunnerEngine::tasks(),
        RunnerEngine::Tasks { workers: 2 },
        RunnerEngine::Tasks { workers: 1 },
    ] {
        let tasks = sort_under(engine, p, n_per, threads, fault.clone(), recovery);
        assert_eq!(reference.len(), tasks.len(), "{label}: rank count");
        for (rank, (a, b)) in reference.iter().zip(&tasks).enumerate() {
            assert_eq!(
                a, b,
                "{label}: rank {rank} diverges between Threads and {engine:?} \
                 (p={p}, n_per={n_per}, t={threads})"
            );
        }
    }
}

fn loss_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_straggler(1, 2.0)
        .with_loss(LossSpec {
            rate: 0.05,
            timeout_ns: 40_000,
            max_retries: 24,
            duplicate_rate: 0.05,
            backoff_factor: 1.3,
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// Fault-free sorts: every (p, t) pair agrees across engines.
    #[test]
    fn engines_agree_fault_free(
        p_ix in 0usize..3,
        four_threads in any::<bool>(),
        n_per in 64usize..512,
    ) {
        let p = [3usize, 8, 16][p_ix];
        let threads = if four_threads { 4 } else { 1 };
        assert_engines_agree(
            "fault-free",
            p,
            n_per,
            threads,
            FaultPlan::default(),
            RecoveryPolicy::Abort,
        );
    }

    /// Lossy links + a straggler (non-fatal faults): retries, timeouts,
    /// and duplicates land identically under both engines.
    #[test]
    fn engines_agree_under_faults(
        p_ix in 0usize..3,
        four_threads in any::<bool>(),
        seed in 1u64..500,
    ) {
        let p = [3usize, 8, 16][p_ix];
        let threads = if four_threads { 4 } else { 1 };
        assert_engines_agree(
            "lossy",
            p,
            256,
            threads,
            loss_plan(seed),
            RecoveryPolicy::Abort,
        );
    }

    /// A mid-sort crash with shrink-and-recover: the victim's typed
    /// failure and every survivor's recovered output + report agree.
    #[test]
    fn engines_agree_through_shrink_recovery(
        wide in any::<bool>(),
        four_threads in any::<bool>(),
        victim_seed in 0u64..100,
    ) {
        let p = if wide { 16 } else { 8 };
        let threads = if four_threads { 4 } else { 1 };
        let p_u64 = p as u64;
        let victim = (victim_seed % p_u64) as usize;
        let crash_ns = 40_000 + 10_000 * (victim_seed % 7);
        let fault = FaultPlan::seeded(victim_seed + 1).with_crash(victim, crash_ns);
        assert_engines_agree(
            "shrink",
            p,
            512,
            threads,
            fault,
            RecoveryPolicy::Shrink,
        );
    }
}

/// Pinned deterministic spot-check (runs even with proptest shrunk
/// away): p=16, hybrid t=4, crash + shrink, all worker counts.
#[test]
fn engines_agree_pinned_shrink_case() {
    let fault = FaultPlan::seeded(7).with_crash(5, 60_000);
    assert_engines_agree("pinned-shrink", 16, 600, 4, fault, RecoveryPolicy::Shrink);
}

/// The task engine must also match on runs that fail outright (no
/// recovery armed): same root cause, same collateral classification.
#[test]
fn engines_agree_on_fatal_crash() {
    let fault = FaultPlan::seeded(3).with_crash(2, 30_000);
    assert_engines_agree("fatal", 8, 256, 1, fault, RecoveryPolicy::Abort);
}
