//! Property tests of the simulated runtime's collectives against
//! sequential reference semantics, over random rank counts, payloads
//! and interleavings.

use dhs::runtime::{run, AllToAllAlgo, ClusterConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn allreduce_matches_reference(
        p in 1usize..10,
        width in 0usize..20,
        seed in 0u64..100_000,
    ) {
        let out = run(&ClusterConfig::small_cluster(p), move |comm| {
            let xs: Vec<u64> = (0..width)
                .map(|i| seed.wrapping_mul(comm.rank() as u64 + 1).wrapping_add(i as u64))
                .collect();
            (xs.clone(), comm.allreduce_sum(xs))
        });
        let mut expect = vec![0u64; width];
        for ((xs, _), _) in &out {
            for (e, x) in expect.iter_mut().zip(xs) {
                *e = e.wrapping_add(*x);
            }
        }
        for ((_, got), _) in &out {
            prop_assert_eq!(got, &expect);
        }
    }

    #[test]
    fn exscan_matches_reference(
        p in 1usize..10,
        width in 0usize..12,
        seed in 0u64..100_000,
    ) {
        let out = run(&ClusterConfig::small_cluster(p), move |comm| {
            let xs: Vec<u64> =
                (0..width).map(|i| (comm.rank() as u64 + 2) * (i as u64 + 1) + seed % 7).collect();
            (xs.clone(), comm.exscan_sum_vec(xs))
        });
        let mut acc = vec![0u64; width];
        for ((xs, got), _) in &out {
            prop_assert_eq!(got, &acc);
            for (a, x) in acc.iter_mut().zip(xs) {
                *a += *x;
            }
        }
    }

    #[test]
    fn exchange_is_a_transpose(
        p in 1usize..8,
        algo_ix in 0usize..4,
        seed in 0u64..100_000,
    ) {
        let algo = [AllToAllAlgo::OneFactor, AllToAllAlgo::Bruck,
                    AllToAllAlgo::HierarchicalLeaders,
                    AllToAllAlgo::StagedKWay { k: 2 }][algo_ix];
        let out = run(&ClusterConfig::small_cluster(p), move |comm| {
            let r = comm.rank();
            // Variable-size buckets keyed by (src, dst).
            let send: Vec<Vec<u64>> = (0..p)
                .map(|d| vec![(r * p + d) as u64; (r + d + seed as usize) % 4])
                .collect();
            comm.exchange(send, algo).into_vecs()
        });
        for (dst, (recv, _)) in out.iter().enumerate() {
            for (src, bucket) in recv.iter().enumerate() {
                prop_assert_eq!(bucket.len(), (src + dst + seed as usize) % 4);
                prop_assert!(bucket.iter().all(|&x| x == (src * p + dst) as u64));
            }
        }
    }

    #[test]
    fn broadcast_and_gather_roundtrip(
        p in 1usize..10,
        root in 0usize..10,
        value in any::<u64>(),
    ) {
        let root = root % p;
        let out = run(&ClusterConfig::small_cluster(p), move |comm| {
            let mine = if comm.rank() == root { value } else { 0 };
            let b = comm.broadcast(root, mine);
            let g = comm.allgather(b);
            (b, g)
        });
        for ((b, g), _) in out {
            prop_assert_eq!(b, value);
            prop_assert_eq!(g, vec![value; p]);
        }
    }

    #[test]
    fn split_partitions_consistently(
        p in 2usize..12,
        colors in 1usize..4,
    ) {
        let out = run(&ClusterConfig::small_cluster(p), move |comm| {
            let color = (comm.rank() % colors) as u64;
            let sub = comm.split(color, comm.rank() as u64);
            let members: Vec<usize> = sub.allgather(comm.rank());
            (color, sub.rank(), members)
        });
        for (rank, ((color, sub_rank, members), _)) in out.iter().enumerate() {
            let expect: Vec<usize> =
                (0..p).filter(|r| (r % colors) as u64 == *color).collect();
            prop_assert_eq!(members, &expect);
            prop_assert_eq!(members[*sub_rank], rank);
        }
    }
}
