//! Integration of the PGAS layer with the sort and selection stack:
//! `dash::sort`-style array sorting, `nth_element` consistency, and
//! the one-sided view of sorted data.

use dhs::core::{median, nth_element, sort, OrderedF64};
use dhs::pgas::GlobalArray;
use dhs::runtime::{run, ClusterConfig};
use dhs::select::dselect;
use dhs::workloads::{rank_local_keys, rank_seed, Distribution, Layout};
use proptest::prelude::*;

#[test]
fn sorted_array_readable_one_sided() {
    let p = 8;
    let n = 8 * 250;
    let out = run(&ClusterConfig::small_cluster(p), move |comm| {
        let local = rank_local_keys(
            Distribution::paper_uniform(),
            Layout::Balanced,
            n,
            p,
            comm.rank(),
            3,
        );
        let arr = GlobalArray::from_local(comm, local);
        sort(comm, &arr);
        // Every rank independently verifies the global order through
        // one-sided reads.
        let all = arr.get_range(comm, 0, arr.global_len());
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
        all[0]
    });
    let first = out[0].0;
    assert!(out.iter().all(|(v, _)| *v == first));
}

#[test]
fn nth_element_equals_sorted_index_for_floats() {
    let p = 4;
    let n_per = 300;
    let out = run(&ClusterConfig::small_cluster(p), move |comm| {
        let local: Vec<OrderedF64> = Distribution::paper_normal()
            .generate_f64(n_per, rank_seed(5, comm.rank()))
            .into_iter()
            .map(OrderedF64)
            .collect();
        let arr = GlobalArray::from_local(comm, local);
        arr.fence(comm);
        let q1 = nth_element(comm, &arr, (arr.global_len() as u64) / 4).expect("k within range");
        let med = median(comm, &arr).expect("array is non-empty");
        sort(comm, &arr);
        let q1_sorted = arr.get(comm, arr.global_len() / 4);
        let med_sorted = arr.get(comm, (arr.global_len() - 1) / 2);
        assert_eq!(q1, q1_sorted);
        assert_eq!(med, med_sorted);
        med.0
    });
    // Median of N(0,1) should be near zero.
    assert!(out[0].0.abs() < 0.2, "median {} too far from 0", out[0].0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn dselect_matches_sorted_reference(
        p in 2usize..7,
        n_per in 0usize..400,
        k_frac in 0.0f64..1.0,
        seed in 0u64..100_000,
    ) {
        let n_total = p * n_per;
        prop_assume!(n_total > 0);
        let k = ((n_total - 1) as f64 * k_frac) as u64;
        let out = run(&ClusterConfig::small_cluster(p), move |comm| {
            let local = rank_local_keys(
                Distribution::Zipf { items: 100, s: 1.1 },
                Layout::Balanced, n_total, p, comm.rank(), seed);
            (dselect(comm, &local, k), local)
        });
        let mut all: Vec<u64> = out.iter().flat_map(|((_, l), _)| l.clone()).collect();
        all.sort_unstable();
        for ((got, _), _) in out {
            prop_assert_eq!(got, all[k as usize]);
        }
    }
}
