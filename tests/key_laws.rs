//! Property tests of the [`dhs::core::Key`] laws: the order embedding
//! that the splitter bisection depends on, for every key type the
//! library ships.

use dhs::core::{Key, OrderedF32, OrderedF64, UniqueKey};
use proptest::prelude::*;

fn check_pair<K: Key + std::fmt::Debug>(a: K, b: K) {
    // Order embedding.
    assert_eq!(a <= b, a.to_bits() <= b.to_bits(), "{a:?} vs {b:?}");
    // Round trip.
    assert_eq!(K::from_bits(a.to_bits()), a);
    assert_eq!(K::from_bits(b.to_bits()), b);
    // Image fits in BITS.
    if K::BITS < 128 {
        assert_eq!(a.to_bits() >> K::BITS, 0);
    }
    // Midpoint stays inside the interval.
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let m = K::mid_key(lo, hi);
    assert!(
        lo <= m && m <= hi,
        "midpoint {m:?} outside [{lo:?}, {hi:?}]"
    );
}

proptest! {
    #[test]
    fn u64_laws(a: u64, b: u64) {
        check_pair(a, b);
    }

    #[test]
    fn i64_laws(a: i64, b: i64) {
        check_pair(a, b);
    }

    #[test]
    fn u32_laws(a: u32, b: u32) {
        check_pair(a, b);
    }

    #[test]
    fn i32_laws(a: i32, b: i32) {
        check_pair(a, b);
    }

    #[test]
    fn f64_laws(a in proptest::num::f64::NORMAL | proptest::num::f64::ZERO
                   | proptest::num::f64::SUBNORMAL | proptest::num::f64::INFINITE,
                b in proptest::num::f64::NORMAL | proptest::num::f64::ZERO) {
        check_pair(OrderedF64(a), OrderedF64(b));
    }

    #[test]
    fn f32_laws(a in proptest::num::f32::NORMAL | proptest::num::f32::ZERO,
                b in proptest::num::f32::NORMAL | proptest::num::f32::ZERO) {
        check_pair(OrderedF32(a), OrderedF32(b));
    }

    #[test]
    fn unique_key_laws(
        ka: u64, kb: u64,
        ra in 0u32..1 << 20, rb in 0u32..1 << 20,
        ia: u32, ib: u32,
    ) {
        let a = UniqueKey { key: ka, rank: ra, index: ia };
        let b = UniqueKey { key: kb, rank: rb, index: ib };
        check_pair(a, b);
        // Ties on the key are broken by origin, so distinct origins
        // are never equal.
        if ka == kb && (ra, ia) != (rb, ib) {
            prop_assert_ne!(a, b);
            prop_assert_ne!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn float_total_order_matches_ieee_on_comparables(a: f64, b: f64) {
        prop_assume!(!a.is_nan() && !b.is_nan());
        let (oa, ob) = (OrderedF64(a), OrderedF64(b));
        if a < b {
            prop_assert!(oa < ob);
        }
        if a == b {
            // -0.0 and +0.0 compare equal in IEEE but have distinct
            // bit images; the embedding must still order consistently.
            prop_assert_eq!(oa <= ob, oa.to_bits() <= ob.to_bits());
        }
    }
}
