//! Quickstart: sort a distributed vector on a simulated 8-rank
//! cluster and inspect the phase statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dhs::core::{histogram_sort, SortConfig};
use dhs::runtime::{run, ClusterConfig};
use dhs::workloads::{rank_local_keys, Distribution, Layout};

fn main() {
    let ranks = 8;
    let keys_per_rank = 100_000;
    let cluster = ClusterConfig::small_cluster(ranks);

    println!(
        "sorting {} keys across {ranks} simulated ranks...",
        ranks * keys_per_rank
    );

    let results = run(&cluster, |comm| {
        // Each rank owns a block of uniform u64 keys in [0, 1e9] — the
        // paper's benchmark workload.
        let mut local = rank_local_keys(
            Distribution::paper_uniform(),
            Layout::Balanced,
            ranks * keys_per_rank,
            ranks,
            comm.rank(),
            /*seed*/ 2024,
        );

        let stats = histogram_sort(comm, &mut local, &SortConfig::default());

        // The output invariant: locally sorted, and no key here exceeds
        // any key on the next rank (checked globally below).
        assert!(local.windows(2).all(|w| w[0] <= w[1]));
        (local.first().copied(), local.last().copied(), stats)
    });

    // Verify the global invariant across ranks and show the phases.
    let mut prev_max = None;
    for (rank, ((lo, hi, stats), report)) in results.iter().enumerate() {
        if let (Some(prev), Some(lo)) = (prev_max, *lo) {
            assert!(prev <= lo, "rank boundaries must nest");
        }
        prev_max = *hi;
        println!(
            "rank {rank}: {:>7} keys  range [{:>10}, {:>10}]  {} histogram iterations, \
             {:.2} ms simulated ({:.1}% exchange)",
            stats.n_out,
            lo.map(|x| x.to_string()).unwrap_or_default(),
            hi.map(|x| x.to_string()).unwrap_or_default(),
            stats.iterations,
            stats.total_ns() as f64 / 1e6,
            stats.exchange_ns as f64 / stats.total_ns().max(1) as f64 * 100.0,
        );
        let _ = report;
    }
    println!("globally sorted ✓ (perfect partitioning: every rank kept its key count)");
}
