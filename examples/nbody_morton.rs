//! N-body load balancing via space-filling curves — the motivating
//! application of the paper's introduction: "Irregular applications,
//! like N-Body particle simulations, can achieve load balancing
//! through space filling curves (e.g., Morton Order) by sorting
//! n-dimensional coordinates according to a projection into the
//! 1-dimensional space."
//!
//! A clustered 3D particle distribution (a Plummer-like blob per rank)
//! is encoded in Morton order and sorted with *balanced* partitioning:
//! afterwards every rank owns an equal share of a contiguous segment
//! of the space-filling curve — spatially compact work units.
//!
//! ```sh
//! cargo run --release --example nbody_morton
//! ```

use dhs::core::{histogram_sort, Partitioning, SortConfig};
use dhs::runtime::{run, ClusterConfig};
use dhs::workloads::{rank_seed, Mt19937_64};

/// Interleave the low 21 bits of x, y, z into a 63-bit Morton code.
fn morton3(x: u32, y: u32, z: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        let mut v = v as u64 & 0x1F_FFFF; // 21 bits
        v = (v | (v << 32)) & 0x1F00000000FFFF;
        v = (v | (v << 16)) & 0x1F0000FF0000FF;
        v = (v | (v << 8)) & 0x100F00F00F00F00F;
        v = (v | (v << 4)) & 0x10C30C30C30C30C3;
        v = (v | (v << 2)) & 0x1249249249249249;
        v
    }
    spread(x) | (spread(y) << 1) | (spread(z) << 2)
}

/// Invert one spread axis of a Morton code.
fn compact(v: u64) -> u32 {
    let mut v = v & 0x1249249249249249;
    v = (v | (v >> 2)) & 0x10C30C30C30C30C3;
    v = (v | (v >> 4)) & 0x100F00F00F00F00F;
    v = (v | (v >> 8)) & 0x1F0000FF0000FF;
    v = (v | (v >> 16)) & 0x1F00000000FFFF;
    v = (v | (v >> 32)) & 0x1F_FFFF;
    v as u32
}

fn demorton3(m: u64) -> (u32, u32, u32) {
    (compact(m), compact(m >> 1), compact(m >> 2))
}

fn main() {
    let ranks = 16;
    let particles_per_rank = 50_000;
    let cluster = ClusterConfig::supermuc_phase2(ranks);

    println!("# N-body Morton-order load balancing, {ranks} ranks");
    let results = run(&cluster, |comm| {
        // Each rank spawns a clustered blob of particles around a
        // rank-specific center: a *skewed* spatial distribution, the
        // hard case for static domain decomposition.
        let mut g = Mt19937_64::new(rank_seed(9, comm.rank()));
        let center = (
            (comm.rank() as u32 % 4) * 400_000 + 200_000,
            (comm.rank() as u32 / 4 % 4) * 400_000 + 200_000,
            g.below(1 << 21) as u32 / 4,
        );
        let mut codes: Vec<u64> = (0..particles_per_rank)
            .map(|_| {
                let mut jitter = |c: u32| {
                    let d = (g.below(100_000) as i64 - 50_000) / 2;
                    (c as i64 + d).clamp(0, (1 << 21) - 1) as u32
                };
                let (x, y, z) = (jitter(center.0), jitter(center.1), jitter(center.2));
                morton3(x, y, z)
            })
            .collect();

        // Sort along the space-filling curve with globally balanced
        // output (boundaries at N·i/P, not at the input capacities).
        let cfg = SortConfig::builder()
            .partitioning(Partitioning::Balanced)
            .build()
            .expect("valid config");
        let stats = histogram_sort(comm, &mut codes, &cfg);

        // Each rank's curve segment is spatially compact: report its
        // bounding box.
        let bbox = codes.iter().fold(
            ((u32::MAX, u32::MAX, u32::MAX), (0u32, 0u32, 0u32)),
            |(lo, hi), &m| {
                let (x, y, z) = demorton3(m);
                (
                    (lo.0.min(x), lo.1.min(y), lo.2.min(z)),
                    (hi.0.max(x), hi.1.max(y), hi.2.max(z)),
                )
            },
        );
        (codes.len(), bbox, stats.iterations)
    });

    for (rank, ((n, (lo, hi), iters), _)) in results.iter().enumerate() {
        println!(
            "rank {rank:>2}: {n:>6} particles  box x:[{:>7},{:>7}] y:[{:>7},{:>7}]  ({iters} iters)",
            lo.0, hi.0, lo.1, hi.1
        );
    }
    let loads: Vec<usize> = results.iter().map(|((n, _, _), _)| *n).collect();
    let (min, max) = (
        loads.iter().min().copied().unwrap_or(0),
        loads.iter().max().copied().unwrap_or(0),
    );
    println!(
        "load balance: min {min}, max {max} (imbalance {:.2}%)",
        (max as f64 / (particles_per_rank as f64) - 1.0) * 100.0
    );
    assert!(
        max - min <= 1,
        "balanced partitioning must even out the load"
    );
}
