//! Sparse-matrix load balancing — the paper's closing use case: "we
//! can handle sparse data structures where a fraction of all
//! processors do not contribute local elements. This is useful for
//! example in numerical algorithms to load balance sparse matrices."
//!
//! A block-diagonal-ish sparse matrix arrives with all nonzeros
//! crammed onto a quarter of the ranks (e.g. after reading a file in
//! parallel). Sorting the nonzeros by (row, col) with *balanced*
//! partitioning redistributes them evenly while keeping row segments
//! contiguous — ready for a balanced SpMV.
//!
//! ```sh
//! cargo run --release --example sparse_matrix_balance
//! ```

use dhs::core::{histogram_sort, Partitioning, SortConfig};
use dhs::runtime::{run, ClusterConfig};
use dhs::workloads::{rank_seed, Mt19937_64};

/// Pack a (row, col) coordinate into one sortable key: row-major order.
fn coo_key(row: u32, col: u32) -> u64 {
    ((row as u64) << 32) | col as u64
}

fn coo_unkey(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

fn main() {
    let ranks = 16;
    let n_rows = 1 << 20;
    let nnz_total = 800_000;
    let holders = ranks / 4; // only 4 of 16 ranks hold data initially
    let cluster = ClusterConfig::supermuc_phase2(ranks);

    println!(
        "# Sparse matrix rebalancing: {nnz_total} nonzeros initially on {holders}/{ranks} ranks"
    );
    let results = run(&cluster, |comm| {
        // Sparse input: most ranks contribute nothing.
        let mut nnz: Vec<u64> = if comm.rank() < holders {
            let mut g = Mt19937_64::new(rank_seed(31, comm.rank()));
            (0..nnz_total / holders)
                .map(|_| {
                    // Banded structure: columns near the diagonal.
                    let row = g.below(n_rows as u64) as u32;
                    let col = (row as i64 + g.below(2048) as i64 - 1024).clamp(0, n_rows as i64 - 1)
                        as u32;
                    coo_key(row, col)
                })
                .collect()
        } else {
            Vec::new()
        };
        let before = nnz.len();

        let cfg = SortConfig::builder()
            .partitioning(Partitioning::Balanced)
            .build()
            .expect("valid config");
        let stats = histogram_sort(comm, &mut nnz, &cfg);

        let rows = nnz.iter().map(|&k| coo_unkey(k).0);
        let (row_lo, row_hi) = rows.fold((u32::MAX, 0u32), |(lo, hi), r| (lo.min(r), hi.max(r)));
        (before, nnz.len(), row_lo, row_hi, stats.iterations)
    });

    println!(
        "{:>4}  {:>10}  {:>10}  {:>22}",
        "rank", "nnz-before", "nnz-after", "row-range-after"
    );
    for (rank, ((before, after, lo, hi, _), _)) in results.iter().enumerate() {
        println!("{rank:>4}  {before:>10}  {after:>10}  [{lo:>9}, {hi:>9}]");
    }
    let loads: Vec<usize> = results.iter().map(|((_, a, _, _, _), _)| *a).collect();
    let max = loads.iter().max().copied().unwrap_or(0);
    let min = loads.iter().min().copied().unwrap_or(0);
    assert!(max - min <= 1, "nonzeros must be evenly spread");
    println!("rebalanced: every rank now holds {min}-{max} nonzeros, row-contiguous ✓");
}
