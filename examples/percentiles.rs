//! Distributed percentile queries without sorting — the selection
//! building block the paper positions as reusable beyond the sort
//! ("we can reuse our distributed selection implementation ... e.g.
//! dash::nth_element").
//!
//! A latency-monitoring scenario: every rank holds a shard of raw
//! response-time samples; we extract p50/p90/p99/p99.9 with Algorithm 1
//! (distributed selection) — no data movement at all — and cross-check
//! against a full histogram sort.
//!
//! ```sh
//! cargo run --release --example percentiles
//! ```

use dhs::core::{histogram_sort, SortConfig};
use dhs::runtime::{run, ClusterConfig};
use dhs::select::{dselect, dselect_with_stats};
use dhs::workloads::{rank_seed, Distribution, Mt19937_64};

fn main() {
    let ranks = 32;
    let samples_per_rank = 200_000;
    let n_total = (ranks * samples_per_rank) as u64;
    let cluster = ClusterConfig::supermuc_phase2(ranks);

    println!("# percentile extraction over {n_total} latency samples on {ranks} ranks");

    let results = run(&cluster, |comm| {
        // Log-normal-ish latencies in microseconds: a heavy tail, the
        // realistic hard case for percentile estimation.
        let mut g = Mt19937_64::new(rank_seed(77, comm.rank()));
        let base = Distribution::Exponential { lambda: 1.0 }
            .generate_f64(samples_per_rank, rank_seed(78, comm.rank()));
        let local: Vec<u64> = base
            .into_iter()
            .map(|x| (200.0 + 800.0 * x * x + g.next_f64()) as u64)
            .collect();

        // Percentiles by pure selection: zero keys leave their rank.
        let t0 = comm.now_ns();
        let quantile = |q: f64| -> u64 {
            let k = ((n_total - 1) as f64 * q) as u64;
            dselect(comm, &local, k)
        };
        let p50 = quantile(0.50);
        let p90 = quantile(0.90);
        let p99 = quantile(0.99);
        let (p999, sel_stats) = {
            let k = ((n_total - 1) as f64 * 0.999) as u64;
            dselect_with_stats(comm, &local, k)
        };
        let select_ns = comm.now_ns() - t0;

        // Cross-check: full distributed sort, then read the same ranks.
        let t1 = comm.now_ns();
        let mut sorted = local.clone();
        histogram_sort(comm, &mut sorted, &SortConfig::default());
        let sort_ns = comm.now_ns() - t1;

        (
            p50,
            p90,
            p99,
            p999,
            sel_stats.rounds,
            select_ns,
            sort_ns,
            sorted,
        )
    });

    let (p50, p90, p99, p999, rounds, select_ns, sort_ns, _) = results[0].0.clone();
    println!("p50  = {p50:>6} us");
    println!("p90  = {p90:>6} us");
    println!("p99  = {p99:>6} us");
    println!("p99.9= {p999:>6} us   ({rounds} weighted-median rounds)");
    println!(
        "simulated cost: 4 selections {:.3} ms vs full sort {:.3} ms ({:.1}x cheaper)",
        select_ns as f64 / 1e6,
        sort_ns as f64 / 1e6,
        sort_ns as f64 / select_ns as f64
    );

    // Verify against the globally sorted data.
    let all: Vec<u64> = results.iter().flat_map(|(r, _)| r.7.clone()).collect();
    assert!(all.windows(2).all(|w| w[0] <= w[1]));
    for (q, got) in [(0.50, p50), (0.90, p90), (0.99, p99), (0.999, p999)] {
        let k = ((n_total - 1) as f64 * q) as usize;
        assert_eq!(all[k], got, "selection must agree with sorted rank {k}");
    }
    println!("selection agrees with the sorted oracle at every percentile ✓");
}
