//! The PGAS front door on one shared-memory node: a `GlobalArray`
//! sorted with the `std::sort`-like interface (paper §VI-D / §VII:
//! "The algorithm's interface is in accordance with C++ std::sort"),
//! plus `nth_element`/`median` reusing the distributed selection — and
//! a wall-clock comparison against this crate's actual multi-threaded
//! merge sort.
//!
//! ```sh
//! cargo run --release --example shm_sort
//! ```

use dhs::core::{median, nth_element, sort, OrderedF64};
use dhs::pgas::GlobalArray;
use dhs::runtime::{run, ClusterConfig};
use dhs::shm::parallel_merge_sort;
use dhs::workloads::{rank_seed, Distribution};

fn main() {
    let cores = 28; // one Table I node: 4 NUMA domains x 7 cores
    let n_per_rank = 50_000;
    let cluster = ClusterConfig::single_node(cores);

    println!("# dash-style sort of a GlobalArray on one simulated {cores}-core node");
    let results = run(&cluster, |comm| {
        // Normally distributed doubles, the paper's Fig. 4 workload.
        let local: Vec<OrderedF64> = Distribution::paper_normal()
            .generate_f64(n_per_rank, rank_seed(64, comm.rank()))
            .into_iter()
            .map(|x| OrderedF64(x * 1e6))
            .collect();
        let arr = GlobalArray::from_local(comm, local);
        arr.fence(comm);

        // nth_element / median work without sorting...
        let med_before = median(comm, &arr).expect("array is non-empty");
        let p10 = nth_element(comm, &arr, (arr.global_len() as u64) / 10).expect("k within range");

        // ...and the array can be sorted in place, std::sort-style.
        let stats = sort(comm, &arr);

        // After sorting, the median is simply the middle element.
        let mid = arr.get(comm, (arr.global_len() - 1) / 2);
        assert_eq!(mid, med_before, "selection must agree with sorted order");

        (med_before.0, p10.0, stats.total_ns())
    });

    let (med, p10, ns) = results[0].0;
    println!("median = {med:.1}, 10th percentile = {p10:.1}");
    println!(
        "simulated sort time on {cores} cores: {:.2} ms",
        ns as f64 / 1e6
    );

    // Host-side comparison: the real multi-threaded merge sort from
    // dhs-shm (wall clock; meaningful only with real cores).
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut data = Distribution::paper_uniform().generate_u64(cores * n_per_rank, 1);
    let t0 = std::time::Instant::now();
    parallel_merge_sort(&mut data, host);
    println!(
        "host wall clock: parallel_merge_sort of {} keys on {host} core(s): {:.2} ms",
        data.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    assert!(data.windows(2).all(|w| w[0] <= w[1]));
}
